// Property tests for the per-page 8-bit quantized filter-then-refine path:
//
//  * Soundness: for every metric with a code kernel and every supported
//    SIMD tier, the code lower bound never exceeds the true distance —
//    including adversarial cases (query equal to a stored point, degenerate
//    and near-degenerate dimensions, duplicated points, coordinates far
//    outside the unit cube).
//  * End-to-end byte-identity: range / k-NN / box results with sidecars on
//    are identical — bitwise, including tie-breaks — to the scalar
//    reference path, at every tier.
//  * Sidecar lifecycle: lazy build, invalidation on mutation, stale-sidecar
//    detection (QuantizedPage::Matches), validator integration.
//  * Layout pinning: the on-page block layout and sidecar alignment the
//    SIMD kernels rely on.
//  * Accounting: scan_points / quant_refined / quant_pruned in IoStats.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/hybrid_tree.h"
#include "core/node.h"
#include "data/generators.h"
#include "geometry/kernels/kernels.h"
#include "geometry/metrics.h"
#include "geometry/quantize.h"
#include "storage/quant_store.h"

namespace ht {
namespace {

// --- layout pinning --------------------------------------------------------
// The SIMD kernels and sidecar builder assume this exact data-page layout;
// a change here must be a deliberate format revision, not an accident.
static_assert(DataNode::kHeaderBytes == 4);
static_assert(Page::kAlignment == 64);
static_assert(quant::kDimPad == 16);
static_assert(quant::PaddedDim(1) == 16);
static_assert(quant::PaddedDim(16) == 16);
static_assert(quant::PaddedDim(17) == 32);

TEST(QuantLayout, PageBlockLayoutIsPinned) {
  for (uint32_t dim : {4u, 16u, 33u}) {
    EXPECT_EQ(DataNode::EntryBytes(dim), 8 + 4 * static_cast<size_t>(dim));
    DataNode node;
    node.entries.push_back({1, std::vector<float>(dim, 0.25f)});
    node.entries.push_back({2, std::vector<float>(dim, 0.75f)});
    std::vector<uint8_t> page(4096);
    node.Serialize(page.data(), page.size(), dim);
    DataPageScan scan(page.data(), page.size(), dim);
    ASSERT_TRUE(scan.ok());
    if (scan.block() == nullptr) GTEST_SKIP() << "big-endian host";
    // Row-major block with the next entry's 8-byte id inside the stride.
    EXPECT_EQ(scan.stride_floats(), dim + 2u);
    EXPECT_EQ(reinterpret_cast<const uint8_t*>(scan.block()),
              page.data() + DataNode::kHeaderBytes + 8);
  }
}

TEST(QuantLayout, PageFramesAndSidecarRowsAreAligned) {
  Page p(4096);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p.data()) % Page::kAlignment, 0u);
  Page q = p;  // copies keep the alignment
  EXPECT_EQ(reinterpret_cast<uintptr_t>(q.data()) % Page::kAlignment, 0u);

  const uint32_t dim = 7;
  std::vector<float> block(3 * (dim + 2), 0.5f);
  QuantizedPage qp(block.data(), dim + 2, 3, dim);
  const quant::PageCodesView v = qp.view();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.codes) % Page::kAlignment, 0u);
  EXPECT_EQ(v.stride, quant::PaddedDim(dim));
  EXPECT_EQ(v.stride % quant::kDimPad, 0u);
}

// --- helpers ---------------------------------------------------------------

std::vector<kernels::SimdTier> SupportedTiers() {
  std::vector<kernels::SimdTier> tiers = {kernels::SimdTier::kScalar};
  if (kernels::TierSupported(kernels::SimdTier::kAvx2)) {
    tiers.push_back(kernels::SimdTier::kAvx2);
  }
  if (kernels::TierSupported(kernels::SimdTier::kAvx512)) {
    tiers.push_back(kernels::SimdTier::kAvx512);
  }
  return tiers;
}

class ScopedTier {
 public:
  explicit ScopedTier(kernels::SimdTier tier) { kernels::ForceTier(tier); }
  ~ScopedTier() { kernels::ClearForcedTier(); }
};

std::unique_ptr<DistanceMetric> MakeMetric(int which, uint32_t dim) {
  switch (which) {
    case 0:
      return std::make_unique<L1Metric>();
    case 1:
      return std::make_unique<L2Metric>();
    case 2:
      return std::make_unique<LInfMetric>();
    default: {
      std::vector<double> w(dim);
      for (uint32_t d = 0; d < dim; ++d) w[d] = 0.05 + 0.15 * (d % 7);
      return std::make_unique<WeightedL2Metric>(std::move(w));
    }
  }
}

/// A synthetic page block in DataPageScan layout (stride = dim + 2).
struct TestBlock {
  uint32_t dim;
  size_t count;
  std::vector<float> data;
  const float* block() const { return data.data(); }
  size_t stride() const { return dim + 2; }
  float* row(size_t i) { return data.data() + i * stride(); }
};

TestBlock MakeBlock(uint32_t dim, size_t count) {
  TestBlock b;
  b.dim = dim;
  b.count = count;
  b.data.assign(count * (dim + 2), 0.0f);
  return b;
}

/// Checks lb <= true distance for every row, every metric, every tier.
void CheckSound(const TestBlock& b, const std::vector<float>& query) {
  QuantizedPage qp(b.block(), b.dim + 2, b.count, b.dim);
  quant::FilterScratch scratch;
  std::vector<double> lb(b.count);
  for (int m = 0; m < 4; ++m) {
    auto metric = MakeMetric(m, b.dim);
    for (const kernels::SimdTier tier : SupportedTiers()) {
      ScopedTier forced(tier);
      ASSERT_TRUE(metric->CodeLowerBounds(query, qp.view(), &scratch,
                                          lb.data()));
      for (size_t i = 0; i < b.count; ++i) {
        const std::span<const float> row(b.data.data() + i * b.stride(),
                                         b.dim);
        const double d = metric->Distance(query, row);
        ASSERT_LE(lb[i], d) << "metric " << metric->Name() << " tier "
                            << kernels::TierName(tier) << " row " << i;
        ASSERT_GE(lb[i], 0.0);
        ASSERT_FALSE(std::isnan(lb[i]));
      }
    }
  }
}

// --- soundness -------------------------------------------------------------

TEST(QuantSoundness, RandomPagesAndQueries) {
  Rng rng(977);
  for (uint32_t dim : {3u, 8u, 16u, 31u, 64u}) {
    for (int rep = 0; rep < 4; ++rep) {
      const size_t count = 1 + static_cast<size_t>(rng.NextDouble() * 120);
      TestBlock b = MakeBlock(dim, count);
      for (size_t i = 0; i < count; ++i) {
        for (uint32_t d = 0; d < dim; ++d) {
          b.row(i)[d] = static_cast<float>(rng.NextDouble());
        }
      }
      std::vector<float> query(dim);
      for (uint32_t d = 0; d < dim; ++d) {
        // Queries inside and well outside the data range.
        query[d] = static_cast<float>(rng.NextDouble() * 3.0 - 1.0);
      }
      CheckSound(b, query);
      // The query coinciding with a stored point: its true distance is 0,
      // so any positive lower bound would be unsound.
      std::span<const float> first(b.data.data(), dim);
      CheckSound(b, std::vector<float>(first.begin(), first.end()));
    }
  }
}

TEST(QuantSoundness, AdversarialGeometry) {
  const uint32_t dim = 8;
  // Degenerate dims (zero width), near-degenerate dims (1-ulp width at a
  // large magnitude, where float rounding of (q - lo) dwarfs the cell
  // width), exact grid boundaries, and duplicated points.
  TestBlock b = MakeBlock(dim, 5);
  const float big = 4096.0f;
  const float big_next = std::nextafterf(big, 2.0f * big);
  for (size_t i = 0; i < b.count; ++i) {
    float* r = b.row(i);
    r[0] = 0.5f;                          // degenerate: all equal
    r[1] = (i % 2 == 0) ? big : big_next;  // near-degenerate, large values
    r[2] = static_cast<float>(i) / 4.0f;  // exact 1/4 grid positions
    r[3] = (i < 2) ? 0.0f : 1.0f;         // two clusters
    r[4] = 0.125f * static_cast<float>(i);
    r[5] = -1.0f + 0.5f * static_cast<float>(i);  // negative coords
    r[6] = 1e-30f * static_cast<float>(i);        // subnormal-ish widths
    r[7] = 0.25f;
  }
  b.row(4)[4] = b.row(0)[4];  // duplicate coordinates across rows

  // Queries: a stored point (distance 0 for some row), points at cell
  // boundaries, and a far-away point.
  std::vector<float> q0(b.row(2), b.row(2) + dim);
  CheckSound(b, q0);
  std::vector<float> q1 = {0.5f, big, 0.25f, 0.0f, 0.125f, -0.5f, 0.0f,
                           0.25f};
  CheckSound(b, q1);
  std::vector<float> q2(dim, 100.0f);
  CheckSound(b, q2);
  std::vector<float> q3 = {0.5f, big_next, 0.5f, 1.0f, 0.0f, 1.0f,
                           1e-30f, 0.25f};
  CheckSound(b, q3);
}

TEST(QuantSoundness, SinglePointPage) {
  // One point: every grid dim is degenerate (lo == hi), codes are all 0.
  const uint32_t dim = 5;
  TestBlock b = MakeBlock(dim, 1);
  for (uint32_t d = 0; d < dim; ++d) b.row(0)[d] = 0.1f * (d + 1);
  std::vector<float> same(b.row(0), b.row(0) + dim);
  CheckSound(b, same);  // distance 0: lb must be <= 0
  CheckSound(b, std::vector<float>(dim, 0.9f));
}

// --- transposed mirror -----------------------------------------------------

// The sidecar's transposed float mirror must yield bit-identical outputs to
// the strided page kernels at every tier, for every metric with a
// transposed kernel, bounded and unbounded — it is a pure layout change.
TEST(QuantTransposed, TransposedKernelsMatchStridedBitForBit) {
  Rng rng(2024);
  for (uint32_t dim : {3u, 8u, 16u, 31u}) {
    const size_t count = 53;  // 6 full blocks + a 5-row tail
    TestBlock b = MakeBlock(dim, count);
    for (size_t i = 0; i < count; ++i) {
      for (uint32_t d = 0; d < dim; ++d) {
        b.row(i)[d] = static_cast<float>(rng.NextDouble());
      }
    }
    QuantizedPage qp(b.block(), b.stride(), count, dim);
    ASSERT_EQ(qp.full_blocks(), count / kernels::kTBlock);
    ASSERT_NE(qp.tfloats(), nullptr);
    std::vector<float> query(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      query[d] = static_cast<float>(rng.NextDouble() * 2.0 - 0.5);
    }
    for (int m = 0; m < 4; ++m) {
      auto metric = MakeMetric(m, dim);
      // A bound near a mid-page distance abandons some rows but not all;
      // +inf exercises the no-abandonment path.
      const double mid =
          metric->Distance(query, {b.data.data() + 20 * b.stride(), dim});
      for (const double bound :
           {std::numeric_limits<double>::infinity(), mid}) {
        for (const kernels::SimdTier tier : SupportedTiers()) {
          ScopedTier forced(tier);
          std::vector<double> strided(count), transposed(count, -1.0);
          metric->BatchDistanceWithBound(query, b.block(), b.stride(), count,
                                         bound, strided.data());
          ASSERT_TRUE(metric->BatchDistanceTransposedWithBound(
              query, qp.tfloats(), qp.full_blocks(), bound,
              transposed.data()));
          for (size_t i = 0; i < qp.full_blocks() * kernels::kTBlock; ++i) {
            EXPECT_EQ(std::bit_cast<uint64_t>(strided[i]),
                      std::bit_cast<uint64_t>(transposed[i]))
                << "metric " << metric->Name() << " tier "
                << kernels::TierName(tier) << " bound " << bound << " row "
                << i << ": " << strided[i] << " vs " << transposed[i];
          }
        }
      }
    }
  }
  // QuadraticForm has no transposed kernel and must decline.
  const uint32_t dim = 4;
  std::vector<double> eye(dim * dim, 0.0);
  for (uint32_t d = 0; d < dim; ++d) eye[d * dim + d] = 1.0;
  QuadraticFormMetric qf(dim, std::move(eye));
  std::vector<float> q(dim, 0.5f);
  double out[8];
  EXPECT_FALSE(qf.BatchDistanceTransposedWithBound(q, nullptr, 0, 1.0, out));
}

// The transposed-code kernels replay the scalar reference's accumulation
// order lane by lane, so full-block code bounds are bitwise identical
// across tiers (the row-major tail kernels reassociate and only promise
// soundness — the comparison stops at the last full block).
TEST(QuantTransposed, TransposedCodeBoundsMatchScalarBitForBit) {
  Rng rng(515);
  for (uint32_t dim : {3u, 8u, 16u, 31u}) {
    const size_t count = 61;  // 7 full blocks + a 5-row tail
    TestBlock b = MakeBlock(dim, count);
    for (size_t i = 0; i < count; ++i) {
      for (uint32_t d = 0; d < dim; ++d) {
        b.row(i)[d] = static_cast<float>(rng.NextDouble());
      }
    }
    QuantizedPage qp(b.block(), b.stride(), count, dim);
    std::vector<float> query(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      query[d] = static_cast<float>(rng.NextDouble() * 2.0 - 0.5);
    }
    quant::FilterScratch scratch;
    for (int m = 0; m < 4; ++m) {
      auto metric = MakeMetric(m, dim);
      std::vector<double> ref(count);
      {
        ScopedTier forced(kernels::SimdTier::kScalar);
        ASSERT_TRUE(metric->CodeLowerBounds(query, qp.view(), &scratch,
                                            ref.data()));
      }
      for (const kernels::SimdTier tier : SupportedTiers()) {
        ScopedTier forced(tier);
        std::vector<double> lb(count);
        ASSERT_TRUE(metric->CodeLowerBounds(query, qp.view(), &scratch,
                                            lb.data()));
        for (size_t i = 0; i < qp.full_blocks() * kernels::kTBlock; ++i) {
          EXPECT_EQ(std::bit_cast<uint64_t>(ref[i]),
                    std::bit_cast<uint64_t>(lb[i]))
              << "metric " << metric->Name() << " tier "
              << kernels::TierName(tier) << " dim " << dim << " row " << i
              << ": " << ref[i] << " vs " << lb[i];
        }
      }
    }
  }
}

// --- fused mask filter -----------------------------------------------------
//
// CodeFilterMasks must agree with the `lb <= bound` rule: every row that
// rule keeps must have its bit set (anything less would be unsound — and
// rows whose TRUE distance is within the bound are a subset of those), and
// a set bit may overshoot the rule only by FilterThreshold's hair of
// upward slack. Full-block mask bytes must also be bitwise identical
// across tiers (the tail byte comes from the row-major kernels, which only
// promise soundness).
TEST(QuantMask, MasksMatchBoundDecisionsAndTiers) {
  Rng rng(727);
  for (uint32_t dim : {3u, 8u, 16u, 31u}) {
    const size_t count = 61;  // 7 full blocks + a 5-row tail
    TestBlock b = MakeBlock(dim, count);
    for (size_t i = 0; i < count; ++i) {
      for (uint32_t d = 0; d < dim; ++d) {
        b.row(i)[d] = static_cast<float>(rng.NextDouble());
      }
    }
    QuantizedPage qp(b.block(), b.stride(), count, dim);
    std::vector<float> query(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      query[d] = static_cast<float>(rng.NextDouble() * 2.0 - 0.5);
    }
    quant::FilterScratch scratch;
    const size_t nmask = (count + kernels::kTBlock - 1) / kernels::kTBlock;
    for (int m = 0; m < 4; ++m) {
      auto metric = MakeMetric(m, dim);
      std::vector<double> exact(count);
      std::vector<double> sorted(count);
      for (size_t i = 0; i < count; ++i) {
        const std::span<const float> row(b.data.data() + i * b.stride(), dim);
        exact[i] = metric->Distance(query, row);
      }
      sorted = exact;
      std::sort(sorted.begin(), sorted.end());
      const double bounds[] = {0.0, sorted[count / 4], sorted[count / 2],
                               sorted[count - 1], 1e300};
      for (const double bound : bounds) {
        std::vector<uint8_t> ref(nmask, 0xAA);
        {
          ScopedTier forced(kernels::SimdTier::kScalar);
          ASSERT_TRUE(metric->CodeFilterMasks(query, qp.view(), bound,
                                              &scratch, ref.data()));
        }
        for (const kernels::SimdTier tier : SupportedTiers()) {
          ScopedTier forced(tier);
          std::vector<uint8_t> masks(nmask, 0x55);
          std::vector<double> lb(count);
          ASSERT_TRUE(metric->CodeFilterMasks(query, qp.view(), bound,
                                              &scratch, masks.data()));
          ASSERT_TRUE(metric->CodeLowerBounds(query, qp.view(), &scratch,
                                              lb.data()));
          for (size_t blk = 0; blk < qp.full_blocks(); ++blk) {
            EXPECT_EQ(ref[blk], masks[blk])
                << "metric " << metric->Name() << " tier "
                << kernels::TierName(tier) << " dim " << dim << " block "
                << blk;
          }
          for (size_t i = 0; i < count; ++i) {
            const bool bit =
                (masks[i / kernels::kTBlock] >> (i % kernels::kTBlock)) & 1;
            const char* ctx = metric->Name().c_str();
            if (exact[i] <= bound) {
              EXPECT_TRUE(bit) << ctx << " pruned a true hit, row " << i;
            }
            if (lb[i] <= bound) {
              EXPECT_TRUE(bit) << ctx << " stricter than lb rule, row " << i;
            }
            if (bit) {
              EXPECT_LE(lb[i], bound * (1.0 + 1e-9))
                  << ctx << " kept a row the lb rule prunes, row " << i;
            }
          }
        }
      }
    }
  }
  // QuadraticForm has no mask kernel and must decline.
  const uint32_t dim = 4;
  std::vector<double> eye(dim * dim, 0.0);
  for (uint32_t d = 0; d < dim; ++d) eye[d * dim + d] = 1.0;
  QuadraticFormMetric qf(dim, std::move(eye));
  std::vector<float> q(dim, 0.5f);
  TestBlock b = MakeBlock(dim, 9);
  QuantizedPage qp(b.block(), b.stride(), 9, dim);
  quant::FilterScratch scratch;
  uint8_t masks[2];
  EXPECT_FALSE(qf.CodeFilterMasks(q, qp.view(), 1.0, &scratch, masks));
}

// --- stale-sidecar detection ----------------------------------------------

TEST(QuantStoreTest, MatchesDetectsContentChanges) {
  const uint32_t dim = 6;
  Rng rng(31);
  TestBlock b = MakeBlock(dim, 40);
  for (size_t i = 0; i < b.count; ++i) {
    for (uint32_t d = 0; d < dim; ++d) {
      b.row(i)[d] = static_cast<float>(rng.NextDouble());
    }
  }
  QuantizedPage qp(b.block(), b.stride(), b.count, dim);
  EXPECT_TRUE(qp.Matches(b.block(), b.stride(), b.count, dim));
  // Count / dim mismatches.
  EXPECT_FALSE(qp.Matches(b.block(), b.stride(), b.count - 1, dim));
  EXPECT_FALSE(qp.Matches(b.block(), b.stride(), b.count, dim - 1));
  // A single-coordinate change must be caught (it moves the grid or the
  // point's code).
  const float saved = b.row(17)[3];
  b.row(17)[3] = saved < 0.5f ? saved + 0.4f : saved - 0.4f;
  EXPECT_FALSE(qp.Matches(b.block(), b.stride(), b.count, dim));
  b.row(17)[3] = saved;
  EXPECT_TRUE(qp.Matches(b.block(), b.stride(), b.count, dim));
}

TEST(QuantStoreTest, LifecycleAndInvalidation) {
  const uint32_t dim = 4;
  TestBlock b = MakeBlock(dim, 8);
  for (size_t i = 0; i < b.count; ++i) {
    for (uint32_t d = 0; d < dim; ++d) {
      b.row(i)[d] = 0.1f * static_cast<float>(i + d);
    }
  }
  QuantStore store;
  EXPECT_EQ(store.CachedPages(), 0u);
  EXPECT_EQ(store.Lookup(7), nullptr);
  auto qp = store.GetOrBuild(7, b.block(), b.stride(), b.count, dim,
                             /*concurrent=*/false);
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(store.CachedPages(), 1u);
  // Cached: same object back.
  EXPECT_EQ(store.GetOrBuild(7, b.block(), b.stride(), b.count, dim, false),
            qp);
  EXPECT_EQ(store.Lookup(7), qp);
  // Empty pages never get a sidecar.
  EXPECT_EQ(store.GetOrBuild(9, b.block(), b.stride(), 0, dim, false),
            nullptr);
  store.Invalidate(7);
  EXPECT_EQ(store.Lookup(7), nullptr);
  EXPECT_EQ(store.CachedPages(), 0u);
}

// --- end-to-end byte-identity ----------------------------------------------

std::unique_ptr<HybridTree> BuildTree(const Dataset& data, uint32_t dim,
                                      bool disable_batch, bool quant,
                                      MemPagedFile* file) {
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = 4096;
  o.disable_batch_kernels = disable_batch;
  o.quant_sidecars = quant;
  auto tree = HybridTree::Create(o, file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  return tree;
}

TEST(QuantByteIdentity, FilteredResultsMatchScalarPathAtEveryTier) {
  const uint32_t dim = 16;
  Rng rng(8181);
  Dataset data = GenColhist(2500, dim, rng);

  MemPagedFile f_ref(4096), f_quant(4096), f_plain(4096);
  auto ref_tree = BuildTree(data, dim, /*disable_batch=*/true,
                            /*quant=*/false, &f_ref);
  auto quant_tree = BuildTree(data, dim, /*disable_batch=*/false,
                              /*quant=*/true, &f_quant);
  auto plain_tree = BuildTree(data, dim, /*disable_batch=*/false,
                              /*quant=*/false, &f_plain);
  // Re-insert duplicates of the first rows into all trees so exact ties
  // exist under every metric.
  for (size_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(ref_tree->Insert(data.Row(i), 100000 + i).ok());
    ASSERT_TRUE(quant_tree->Insert(data.Row(i), 100000 + i).ok());
    ASSERT_TRUE(plain_tree->Insert(data.Row(i), 100000 + i).ok());
  }

  L2Metric l2;
  L1Metric l1;
  LInfMetric linf;
  std::vector<double> w(dim);
  for (uint32_t d = 0; d < dim; ++d) w[d] = 0.2 + 0.05 * d;
  WeightedL2Metric wl2{std::move(w)};
  const DistanceMetric* metrics[] = {&l2, &l1, &linf, &wl2};

  for (const kernels::SimdTier tier : SupportedTiers()) {
    ScopedTier forced(tier);
    Rng qrng(99);  // same queries at every tier
    for (int q = 0; q < 10; ++q) {
      std::vector<float> center(dim);
      for (uint32_t d = 0; d < dim; ++d) {
        center[d] = static_cast<float>(qrng.NextDouble());
      }
      for (const DistanceMetric* metric : metrics) {
        const double radius = 0.1 + 0.5 * qrng.NextDouble();
        auto r_ref = ref_tree->SearchRange(center, radius, *metric)
                         .ValueOrDie();
        auto r_quant = quant_tree->SearchRange(center, radius, *metric)
                           .ValueOrDie();
        auto r_plain = plain_tree->SearchRange(center, radius, *metric)
                           .ValueOrDie();
        EXPECT_EQ(r_ref, r_quant)
            << "range, metric " << metric->Name() << ", tier "
            << kernels::TierName(tier) << ", query " << q;
        EXPECT_EQ(r_ref, r_plain);

        for (size_t k : {1u, 10u, 50u}) {
          auto n_ref = ref_tree->SearchKnn(center, k, *metric).ValueOrDie();
          auto n_quant =
              quant_tree->SearchKnn(center, k, *metric).ValueOrDie();
          ASSERT_EQ(n_ref.size(), n_quant.size());
          for (size_t i = 0; i < n_ref.size(); ++i) {
            EXPECT_EQ(std::bit_cast<uint64_t>(n_ref[i].first),
                      std::bit_cast<uint64_t>(n_quant[i].first))
                << "metric " << metric->Name() << ", tier "
                << kernels::TierName(tier) << ", k " << k << ", rank " << i;
            EXPECT_EQ(n_ref[i].second, n_quant[i].second)
                << "metric " << metric->Name() << ", tier "
                << kernels::TierName(tier) << ", k " << k << ", rank " << i;
          }
        }
      }
      // Box results are untouched by the filter but sweep the same trees.
      std::vector<float> lo(dim), hi(dim);
      for (uint32_t d = 0; d < dim; ++d) {
        lo[d] = center[d] - 0.3f;
        hi[d] = center[d] + 0.3f;
      }
      Box box = Box::FromBounds(lo, hi);
      EXPECT_EQ(ref_tree->SearchBox(box).ValueOrDie(),
                quant_tree->SearchBox(box).ValueOrDie());
    }
  }
}

// --- lifecycle through the tree --------------------------------------------

TEST(QuantTreeLifecycle, LazyBuildInvalidateAndValidate) {
  // Sidecars only engage on SIMD tiers (the scalar tier runs the
  // pre-sidecar hot path), so pin the best one for the lifecycle checks.
  if (kernels::BestSupportedTier() == kernels::SimdTier::kScalar) {
    GTEST_SKIP() << "sidecar filtering requires a SIMD tier";
  }
  ScopedTier forced(kernels::BestSupportedTier());
  const uint32_t dim = 8;
  Rng rng(606);
  Dataset data = GenUniform(1200, dim, rng);
  MemPagedFile file(4096);
  auto tree = BuildTree(data, dim, /*disable_batch=*/false, /*quant=*/true,
                        &file);

  // Nothing is built until a bounded scan needs it.
  EXPECT_EQ(tree->CachedQuantPages(), 0u);
  L2Metric l2;
  std::vector<float> center(dim, 0.5f);
  ASSERT_TRUE(tree->SearchRange(center, 0.4, l2).ok());
  const size_t cached = tree->CachedQuantPages();
  EXPECT_GT(cached, 0u);
  // The validator cross-checks every cached sidecar against its page.
  EXPECT_TRUE(tree->CheckInvariants().ok());

  // Mutations invalidate affected sidecars and keep the validator green.
  for (size_t i = 0; i < 200; ++i) {
    std::vector<float> p(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      p[d] = static_cast<float>(rng.NextDouble());
    }
    ASSERT_TRUE(tree->Insert(p, 50000 + i).ok());
  }
  EXPECT_TRUE(tree->CheckInvariants().ok());
  ASSERT_TRUE(tree->SearchRange(center, 0.4, l2).ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree->Delete(data.Row(i), i).ok());
  }
  EXPECT_TRUE(tree->CheckInvariants().ok());

  // With the option off no sidecars are ever built.
  MemPagedFile file2(4096);
  auto tree_off = BuildTree(data, dim, false, /*quant=*/false, &file2);
  ASSERT_TRUE(tree_off->SearchRange(center, 0.4, l2).ok());
  EXPECT_EQ(tree_off->CachedQuantPages(), 0u);
}

// --- accounting ------------------------------------------------------------

TEST(QuantAccounting, FilterCountersAreConsistent) {
  if (kernels::BestSupportedTier() == kernels::SimdTier::kScalar) {
    GTEST_SKIP() << "sidecar filtering requires a SIMD tier";
  }
  ScopedTier forced(kernels::BestSupportedTier());
  const uint32_t dim = 12;
  Rng rng(414);
  Dataset data = GenFourier(2000, dim, rng);
  MemPagedFile file(4096);
  auto tree = BuildTree(data, dim, /*disable_batch=*/false, /*quant=*/true,
                        &file);

  L2Metric l2;
  std::vector<float> center(dim, 0.5f);
  tree->pool().ResetStats();
  ASSERT_TRUE(tree->SearchRange(center, 0.3, l2).ok());
  IoStats s = tree->pool().StatsSnapshot();
  EXPECT_GT(s.scan_points, 0u);
  // Every filtered point was either refined or pruned; unfiltered scans
  // contribute to scan_points only. Hence refined + pruned <= scanned.
  EXPECT_LE(s.quant_refined + s.quant_pruned, s.scan_points);
  EXPECT_GT(s.quant_refined + s.quant_pruned, 0u) << "filter never engaged";

  // k-NN: the heap-not-full warm-up pages are unfiltered, the rest filter.
  tree->pool().ResetStats();
  ASSERT_TRUE(tree->SearchKnn(center, 10, l2).ok());
  s = tree->pool().StatsSnapshot();
  EXPECT_GT(s.scan_points, 0u);
  EXPECT_LE(s.quant_refined + s.quant_pruned, s.scan_points);

  // With the option off, no quant counters move.
  MemPagedFile file2(4096);
  auto off = BuildTree(data, dim, false, /*quant=*/false, &file2);
  off->pool().ResetStats();
  ASSERT_TRUE(off->SearchRange(center, 0.3, l2).ok());
  s = off->pool().StatsSnapshot();
  EXPECT_GT(s.scan_points, 0u);
  EXPECT_EQ(s.quant_refined, 0u);
  EXPECT_EQ(s.quant_pruned, 0u);
}

}  // namespace
}  // namespace ht
