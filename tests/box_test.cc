// Unit tests for k-d bounding boxes.

#include "geometry/box.h"

#include <gtest/gtest.h>

namespace ht {
namespace {

TEST(BoxTest, UnitCube) {
  Box b = Box::UnitCube(3);
  EXPECT_EQ(b.dim(), 3u);
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_DOUBLE_EQ(b.Volume(), 1.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 3.0);
}

TEST(BoxTest, EmptyBoxBehaviour) {
  Box e = Box::Empty(2);
  EXPECT_TRUE(e.IsEmpty());
  const float p[2] = {0.5f, 0.5f};
  EXPECT_FALSE(e.ContainsPoint(p));
  e.ExtendToInclude(std::span<const float>(p, 2));
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_TRUE(e.ContainsPoint(p));
  EXPECT_DOUBLE_EQ(e.Volume(), 0.0);
}

TEST(BoxTest, ContainsAndIntersects) {
  Box a = Box::FromBounds({0.0f, 0.0f}, {0.5f, 0.5f});
  Box b = Box::FromBounds({0.25f, 0.25f}, {0.75f, 0.75f});
  Box c = Box::FromBounds({0.6f, 0.6f}, {0.9f, 0.9f});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
  EXPECT_FALSE(a.ContainsBox(b));
  EXPECT_TRUE(Box::UnitCube(2).ContainsBox(a));
}

TEST(BoxTest, ClosedBoundariesTouchCountsAsIntersection) {
  Box a = Box::FromBounds({0.0f}, {0.5f});
  Box b = Box::FromBounds({0.5f}, {1.0f});
  EXPECT_TRUE(a.Intersects(b));
  const float p = 0.5f;
  EXPECT_TRUE(a.ContainsPoint(std::span<const float>(&p, 1)));
  EXPECT_TRUE(b.ContainsPoint(std::span<const float>(&p, 1)));
}

TEST(BoxTest, IntersectionAndOverlapVolume) {
  Box a = Box::FromBounds({0.0f, 0.0f}, {0.6f, 0.6f});
  Box b = Box::FromBounds({0.4f, 0.4f}, {1.0f, 1.0f});
  Box i = a.Intersection(b);
  EXPECT_FLOAT_EQ(i.lo(0), 0.4f);
  EXPECT_FLOAT_EQ(i.hi(0), 0.6f);
  EXPECT_NEAR(a.OverlapVolume(b), 0.04, 1e-6);
  Box c = Box::FromBounds({0.9f, 0.9f}, {1.0f, 1.0f});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(c), 0.0);
}

TEST(BoxTest, ExtendToIncludeBox) {
  Box a = Box::FromBounds({0.2f, 0.2f}, {0.4f, 0.4f});
  Box b = Box::FromBounds({0.3f, 0.1f}, {0.5f, 0.3f});
  a.ExtendToInclude(b);
  EXPECT_FLOAT_EQ(a.lo(0), 0.2f);
  EXPECT_FLOAT_EQ(a.lo(1), 0.1f);
  EXPECT_FLOAT_EQ(a.hi(0), 0.5f);
  EXPECT_FLOAT_EQ(a.hi(1), 0.4f);
}

TEST(BoxTest, MaxExtentDim) {
  Box b = Box::FromBounds({0.0f, 0.0f, 0.0f}, {0.2f, 0.9f, 0.5f});
  EXPECT_EQ(b.MaxExtentDim(), 1u);
}

TEST(BoxTest, EnlargementForPoint) {
  Box b = Box::FromBounds({0.0f, 0.0f}, {0.5f, 0.5f});
  const float inside[2] = {0.2f, 0.2f};
  EXPECT_DOUBLE_EQ(b.EnlargementForPoint(std::span<const float>(inside, 2)),
                   0.0);
  const float outside[2] = {1.0f, 0.5f};
  // Growing to (1.0, 0.5): volume 0.5 - 0.25 = 0.25.
  EXPECT_NEAR(b.EnlargementForPoint(std::span<const float>(outside, 2)), 0.25,
              1e-9);
}

TEST(BoxTest, MinkowskiOverlapProbability) {
  // §3.2: P(query of side r overlaps BR) = prod(extent_d + r), clipped.
  Box b = Box::FromBounds({0.0f, 0.0f}, {0.3f, 0.4f});
  EXPECT_NEAR(b.MinkowskiOverlapProb(0.1), 0.4 * 0.5, 1e-6);
  // Clipping: a huge query cannot exceed probability 1.
  EXPECT_DOUBLE_EQ(b.MinkowskiOverlapProb(5.0), 1.0);
}

TEST(BoxTest, FromPointIsDegenerate) {
  const float p[3] = {0.1f, 0.2f, 0.3f};
  Box b = Box::FromPoint(std::span<const float>(p, 3));
  EXPECT_TRUE(b.ContainsPoint(p));
  EXPECT_DOUBLE_EQ(b.Volume(), 0.0);
  EXPECT_FALSE(b.IsEmpty());
}

}  // namespace
}  // namespace ht
