// Crash-consistency tests for the ordered flush: HybridTree::Flush must
// make every dirty tree page durable (and synced) strictly before the
// metadata page, so a flush that dies part-way leaves the previous
// metadata — never a root pointer into pages that were not written.

#include <gtest/gtest.h>

#include <vector>

#include "core/hybrid_tree.h"
#include "fault_injecting_file.h"

namespace ht {
namespace {

HybridTreeOptions SmallOptions() {
  HybridTreeOptions o;
  o.dim = 4;
  o.page_size = 512;
  return o;
}

/// Deterministic point in [0,1]^4 from an index.
std::vector<float> TestPoint(uint32_t i) {
  std::vector<float> p(4);
  uint32_t state = i * 2654435761u + 12345u;
  for (int d = 0; d < 4; ++d) {
    state = state * 1664525u + 1013904223u;
    p[d] = static_cast<float>(state % 10000u) / 10000.0f;
  }
  return p;
}

TEST(FlushOrderingTest, MetaPageIsWrittenLastAndSyncedOnEveryFlush) {
  MemPagedFile base(512);
  WriteRecordingPagedFile rec(&base);
  auto tree = HybridTree::Create(SmallOptions(), &rec).ValueOrDie();
  const PageId kMeta = 0;  // Create() allocates the metadata page first

  uint32_t next = 0;
  for (int round = 0; round < 3; ++round) {
    // Enough inserts to dirty several pages (splits included).
    for (int i = 0; i < 120; ++i, ++next) {
      ASSERT_TRUE(tree->Insert(TestPoint(next), next).ok());
    }
    (void)rec.TakeEvents();  // drop any pre-flush noise
    ASSERT_TRUE(tree->Flush().ok());
    std::vector<WriteEvent> events = rec.TakeEvents();
    ASSERT_GE(events.size(), 3u) << "round " << round;
    // Shape: [tree pages...], SYNC, META, SYNC. The metadata page never
    // appears before the first sync barrier.
    ASSERT_TRUE(events.back().IsSync()) << "round " << round;
    ASSERT_EQ(events[events.size() - 2].page, kMeta) << "round " << round;
    bool seen_sync = false;
    size_t meta_writes = 0;
    for (size_t i = 0; i + 2 < events.size(); ++i) {
      if (events[i].IsSync()) {
        seen_sync = true;
        continue;
      }
      EXPECT_NE(events[i].page, kMeta)
          << "metadata page written before tree pages were durable (round "
          << round << ", event " << i << ")";
      meta_writes += events[i].page == kMeta ? 1 : 0;
    }
    EXPECT_TRUE(seen_sync) << "no sync barrier before the metadata write";
    EXPECT_EQ(meta_writes, 0u);
  }
}

TEST(FlushOrderingTest, PartialFirstFlushNeverYieldsATornTree) {
  // Sweep every possible fault point through the first flush: reopening
  // the file must either fail cleanly (metadata never landed — the file
  // is not a tree yet) or produce the complete new tree (metadata landed,
  // which the ordering guarantees happens after everything else).
  const uint32_t kPoints = 150;
  for (uint64_t budget = 0;; ++budget) {
    MemPagedFile base(512);
    FaultInjectingPagedFile faulty(&base);
    auto tree = HybridTree::Create(SmallOptions(), &faulty).ValueOrDie();
    for (uint32_t i = 0; i < kPoints; ++i) {
      ASSERT_TRUE(tree->Insert(TestPoint(i), i).ok());
    }
    faulty.SetWriteBudget(budget);
    const Status flush = tree->Flush();
    faulty.DisableFaults();
    auto reopened = HybridTree::Open(&base);
    if (flush.ok()) {
      // Budget was large enough: a fully flushed tree must reopen whole.
      ASSERT_TRUE(reopened.ok()) << budget;
      EXPECT_EQ((*reopened)->size(), kPoints);
      break;
    }
    if (reopened.ok()) {
      // The flush failed after the metadata landed — everything before it
      // was already durable, so the tree must be complete, not torn.
      EXPECT_EQ((*reopened)->size(), kPoints) << budget;
      Box all = Box::UnitCube(4);
      auto ids = (*reopened)->SearchBox(all);
      ASSERT_TRUE(ids.ok()) << budget;
      EXPECT_EQ(ids->size(), kPoints) << budget;
    }
    // else: metadata never landed; a clean open failure is the correct
    // outcome for a file whose first flush died.
  }
}

TEST(FlushOrderingTest, FailedSecondFlushPreservesOldMetadata) {
  MemPagedFile base(512);
  FaultInjectingPagedFile faulty(&base);
  auto tree = HybridTree::Create(SmallOptions(), &faulty).ValueOrDie();
  const uint32_t kFirst = 100;
  for (uint32_t i = 0; i < kFirst; ++i) {
    ASSERT_TRUE(tree->Insert(TestPoint(i), i).ok());
  }
  ASSERT_TRUE(tree->Flush().ok());
  Page old_meta(512);
  ASSERT_TRUE(base.Read(0, &old_meta).ok());

  // More inserts, then a second flush that dies before any page lands.
  for (uint32_t i = kFirst; i < kFirst + 60; ++i) {
    ASSERT_TRUE(tree->Insert(TestPoint(i), i).ok());
  }
  faulty.SetWriteBudget(0);
  ASSERT_FALSE(tree->Flush().ok());
  faulty.DisableFaults();

  // The on-disk metadata still holds the OLD root and count: the failed
  // flush wrote it last, so it was never reached.
  Page now_meta(512);
  ASSERT_TRUE(base.Read(0, &now_meta).ok());
  for (size_t j = 0; j < 512; ++j) {
    ASSERT_EQ(now_meta.data()[j], old_meta.data()[j]) << "byte " << j;
  }
  auto reopened = HybridTree::Open(&base).ValueOrDie();
  EXPECT_EQ(reopened->size(), kFirst);
  auto ids = reopened->SearchBox(Box::UnitCube(4));
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), kFirst);
}

}  // namespace
}  // namespace ht
