// Tests for Encoded Live Space (§3.4): conservativeness is the critical
// property — a decoded box must always contain the encoded live region.

#include "core/els.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ht {
namespace {

TEST(ElsBitsTest, PutGetRoundTrip) {
  std::vector<uint8_t> buf(8, 0);
  els_detail::PutBits(buf, 3, 0b1011, 4);
  EXPECT_EQ(els_detail::GetBits(buf, 3, 4), 0b1011u);
  els_detail::PutBits(buf, 13, 0x1ff, 9);
  EXPECT_EQ(els_detail::GetBits(buf, 13, 9), 0x1ffu);
  // First value untouched by second write.
  EXPECT_EQ(els_detail::GetBits(buf, 3, 4), 0b1011u);
}

TEST(ElsBitsTest, OverwriteClearsOldBits) {
  std::vector<uint8_t> buf(2, 0xff);
  els_detail::PutBits(buf, 4, 0, 8);
  EXPECT_EQ(els_detail::GetBits(buf, 4, 8), 0u);
}

TEST(ElsCodecTest, CodeBytesFormula) {
  // Paper: 2 * number_of_dimensions * ELSPRECISION bits (Figure 4).
  EXPECT_EQ(ElsCodec(2, 3).CodeBytes(), (2u * 2 * 3 + 7) / 8);
  EXPECT_EQ(ElsCodec(64, 4).CodeBytes(), 64u);  // 512 bits
  EXPECT_EQ(ElsCodec(5, 0).CodeBytes(), 0u);
}

TEST(ElsCodecTest, ZeroBitsDecodesToRef) {
  ElsCodec codec(3, 0);
  Box ref = Box::UnitCube(3);
  Box live = Box::FromBounds({0.1f, 0.1f, 0.1f}, {0.2f, 0.2f, 0.2f});
  ElsCode code = codec.Encode(live, ref);
  EXPECT_TRUE(code.empty());
  EXPECT_EQ(codec.Decode(code, ref), ref);
}

TEST(ElsCodecTest, DecodeContainsLive) {
  ElsCodec codec(2, 4);
  Box ref = Box::FromBounds({0.0f, 0.5f}, {1.0f, 1.0f});
  Box live = Box::FromBounds({0.33f, 0.61f}, {0.47f, 0.93f});
  Box dec = codec.Decode(codec.Encode(live, ref), ref);
  EXPECT_TRUE(dec.ContainsBox(live));
  EXPECT_TRUE(ref.ContainsBox(dec));
}

TEST(ElsCodecTest, HigherPrecisionIsTighter) {
  Box ref = Box::UnitCube(4);
  Box live = Box::FromBounds({0.31f, 0.11f, 0.72f, 0.05f},
                             {0.39f, 0.25f, 0.77f, 0.06f});
  double prev_vol = 2.0;
  for (uint32_t bits : {1u, 2u, 4u, 8u, 12u}) {
    ElsCodec codec(4, bits);
    Box dec = codec.Decode(codec.Encode(live, ref), ref);
    EXPECT_TRUE(dec.ContainsBox(live)) << "bits=" << bits;
    const double vol = dec.Volume();
    EXPECT_LE(vol, prev_vol + 1e-12) << "bits=" << bits;
    prev_vol = vol;
  }
}

TEST(ElsCodecTest, FullCodeDecodesToRef) {
  for (uint32_t bits : {1u, 4u, 8u, 16u}) {
    ElsCodec codec(3, bits);
    Box ref = Box::FromBounds({0.2f, 0.0f, 0.4f}, {0.8f, 0.5f, 0.9f});
    Box dec = codec.Decode(codec.FullCode(), ref);
    for (uint32_t d = 0; d < 3; ++d) {
      EXPECT_FLOAT_EQ(dec.lo(d), ref.lo(d));
      EXPECT_FLOAT_EQ(dec.hi(d), ref.hi(d));
    }
  }
}

TEST(ElsCodecTest, LiveOutsideRefIsClipped) {
  ElsCodec codec(1, 4);
  Box ref = Box::FromBounds({0.5f}, {1.0f});
  // Live extends past the ref (possible with overlapping partitions).
  Box live = Box::FromBounds({0.2f}, {0.7f});
  Box dec = codec.Decode(codec.Encode(live, ref), ref);
  EXPECT_GE(dec.lo(0), 0.5f);
  EXPECT_GE(dec.hi(0) + 1e-6f, 0.7f);
}

TEST(ElsCodecTest, ExtendToIncludeCoversPoint) {
  ElsCodec codec(2, 4);
  Box ref = Box::UnitCube(2);
  Box live = Box::FromBounds({0.4f, 0.4f}, {0.5f, 0.5f});
  ElsCode code = codec.Encode(live, ref);
  const std::vector<float> p = {0.9f, 0.1f};
  ElsCode grown = codec.ExtendToInclude(code, ref, p);
  Box dec = codec.Decode(grown, ref);
  EXPECT_TRUE(dec.ContainsPoint(p));
  EXPECT_TRUE(dec.ContainsBox(codec.Decode(code, ref)));
}

TEST(ElsCodecTest, ReencodeRemainsConservative) {
  ElsCodec codec(2, 4);
  Box old_ref = Box::FromBounds({0.0f, 0.0f}, {0.5f, 1.0f});
  Box new_ref = Box::FromBounds({0.0f, 0.0f}, {0.8f, 1.0f});  // widened
  Box live = Box::FromBounds({0.12f, 0.3f}, {0.44f, 0.6f});
  ElsCode code = codec.Encode(live, old_ref);
  Box old_dec = codec.Decode(code, old_ref);
  ElsCode re = codec.Reencode(code, old_ref, new_ref);
  Box new_dec = codec.Decode(re, new_ref);
  EXPECT_TRUE(new_dec.ContainsBox(old_dec));
}

/// Property sweep: random live boxes inside random refs stay contained
/// after encode/decode at every precision.
class ElsPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ElsPropertyTest, RandomizedConservativeness) {
  const uint32_t bits = GetParam();
  Rng rng(500 + bits);
  for (int trial = 0; trial < 300; ++trial) {
    const uint32_t dim = 1 + static_cast<uint32_t>(rng.NextBelow(8));
    ElsCodec codec(dim, bits);
    std::vector<float> rlo(dim), rhi(dim), llo(dim), lhi(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      float a = static_cast<float>(rng.NextDouble());
      float b = static_cast<float>(rng.NextDouble());
      rlo[d] = std::min(a, b);
      rhi[d] = std::max(a, b) + 1e-3f;
      float c = static_cast<float>(rng.Uniform(rlo[d], rhi[d]));
      float e = static_cast<float>(rng.Uniform(rlo[d], rhi[d]));
      llo[d] = std::min(c, e);
      lhi[d] = std::max(c, e);
    }
    Box ref = Box::FromBounds(rlo, rhi);
    Box live = Box::FromBounds(llo, lhi);
    Box dec = codec.Decode(codec.Encode(live, ref), ref);
    ASSERT_TRUE(dec.ContainsBox(live))
        << "bits=" << bits << " live=" << live.ToString()
        << " dec=" << dec.ToString() << " ref=" << ref.ToString();
    ASSERT_TRUE(ref.ContainsBox(dec));
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, ElsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

}  // namespace
}  // namespace ht
