// Tests for the quadratic-form (generalized ellipsoid) metric and its use
// through the hybrid tree — the full MindReader/MARS feedback metric.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"
#include "geometry/metrics.h"

namespace ht {
namespace {

/// Random symmetric PSD matrix W = A^T A + eps*I (row-major).
std::vector<double> RandomPsd(uint32_t dim, Rng& rng, double eps = 0.05) {
  std::vector<double> a(static_cast<size_t>(dim) * dim);
  for (auto& v : a) v = rng.Uniform(-1.0, 1.0);
  std::vector<double> w(static_cast<size_t>(dim) * dim, 0.0);
  for (uint32_t i = 0; i < dim; ++i) {
    for (uint32_t j = 0; j < dim; ++j) {
      double s = 0.0;
      for (uint32_t k = 0; k < dim; ++k) s += a[k * dim + i] * a[k * dim + j];
      w[i * dim + j] = s;
    }
  }
  for (uint32_t i = 0; i < dim; ++i) w[i * dim + i] += eps;
  return w;
}

TEST(QuadraticFormMetricTest, IdentityMatrixIsEuclidean) {
  const uint32_t dim = 5;
  std::vector<double> eye(dim * dim, 0.0);
  for (uint32_t i = 0; i < dim; ++i) eye[i * dim + i] = 1.0;
  QuadraticFormMetric qf(dim, eye);
  L2Metric l2;
  Rng rng(2001);
  for (int t = 0; t < 50; ++t) {
    std::vector<float> a(dim), b(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      a[d] = static_cast<float>(rng.NextDouble());
      b[d] = static_cast<float>(rng.NextDouble());
    }
    EXPECT_NEAR(qf.Distance(a, b), l2.Distance(a, b), 1e-9);
  }
  EXPECT_NEAR(qf.sqrt_lambda_min(), 1.0, 1e-12);
}

TEST(QuadraticFormMetricTest, DiagonalMatrixMatchesWeightedL2) {
  const uint32_t dim = 4;
  std::vector<double> diag(dim * dim, 0.0);
  std::vector<double> weights = {2.0, 0.5, 1.0, 3.0};
  for (uint32_t i = 0; i < dim; ++i) diag[i * dim + i] = weights[i];
  QuadraticFormMetric qf(dim, diag);
  WeightedL2Metric wl2(weights);
  Rng rng(2003);
  for (int t = 0; t < 50; ++t) {
    std::vector<float> a(dim), b(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      a[d] = static_cast<float>(rng.NextDouble());
      b[d] = static_cast<float>(rng.NextDouble());
    }
    EXPECT_NEAR(qf.Distance(a, b), wl2.Distance(a, b), 1e-9);
  }
}

TEST(QuadraticFormMetricTest, MinDistLowerBoundsInteriorPoints) {
  const uint32_t dim = 4;
  Rng rng(2005);
  for (int trial = 0; trial < 50; ++trial) {
    QuadraticFormMetric qf(dim, RandomPsd(dim, rng));
    std::vector<float> lo(dim), hi(dim), q(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      float a = static_cast<float>(rng.NextDouble());
      float b = static_cast<float>(rng.NextDouble());
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
      q[d] = static_cast<float>(rng.Uniform(-0.5, 1.5));
    }
    Box box = Box::FromBounds(lo, hi);
    const double bound = qf.MinDistToBox(q, box);
    for (int s = 0; s < 30; ++s) {
      std::vector<float> x(dim);
      for (uint32_t d = 0; d < dim; ++d) {
        x[d] = static_cast<float>(rng.Uniform(box.lo(d), box.hi(d)));
      }
      ASSERT_GE(qf.Distance(q, x) + 1e-9, bound) << trial;
    }
  }
}

TEST(QuadraticFormMetricTest, HybridTreeAnswersExactly) {
  const uint32_t dim = 6;
  Rng rng(2007);
  Dataset data = GenClustered(2500, dim, 5, 0.07, rng);
  MemPagedFile file(1024);
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = 1024;
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(tree->Insert(data.Row(i), i));
  }
  // Correlated feedback matrix: dims 0 and 1 move together.
  std::vector<double> w(dim * dim, 0.0);
  for (uint32_t i = 0; i < dim; ++i) w[i * dim + i] = 1.0;
  w[0 * dim + 1] = w[1 * dim + 0] = 0.6;
  QuadraticFormMetric qf(dim, w);
  EXPECT_GT(qf.sqrt_lambda_min(), 0.0);

  for (int q = 0; q < 10; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    auto got = tree->SearchRange(centers[0], 0.4, qf).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceRange(data, centers[0], 0.4, qf));
    auto knn = tree->SearchKnn(centers[0], 8, qf).ValueOrDie();
    auto want = BruteForceKnn(data, centers[0], 8, qf);
    for (size_t i = 0; i < knn.size(); ++i) {
      ASSERT_NEAR(knn[i].first, want[i].first, 1e-9);
    }
  }
}

TEST(QuadraticFormMetricTest, DiagonallyDominatedGershgorinIsZeroSafe) {
  // Strong off-diagonals push the Gershgorin bound to 0: pruning disabled
  // but answers still exact (bound of 0 is always sound).
  const uint32_t dim = 3;
  std::vector<double> w = {1.0, 0.9, 0.9,  //
                           0.9, 1.0, 0.9,  //
                           0.9, 0.9, 1.0};
  QuadraticFormMetric qf(dim, w);
  EXPECT_DOUBLE_EQ(qf.sqrt_lambda_min(), 0.0);
  Rng rng(2011);
  Dataset data = GenUniform(800, dim, rng);
  MemPagedFile file(1024);
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = 1024;
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(tree->Insert(data.Row(i), i));
  }
  auto got = tree->SearchRange(data.Row(0), 0.5, qf).ValueOrDie();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForceRange(data, data.Row(0), 0.5, qf));
}

}  // namespace
}  // namespace ht
