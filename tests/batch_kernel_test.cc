// Property tests for the batched data-page distance kernels
// (DistanceMetric::BatchDistance / BatchDistanceWithBound) and for the
// end-to-end byte-identity of the batched query hot path against the
// scalar reference path (HybridTreeOptions::disable_batch_kernels).
//
// The batch-kernel contract under test (see geometry/metrics.h):
//  * BatchDistance(q, pts, stride, n, out) writes out[i] bit-identical to
//    Distance(q, row_i) for every row.
//  * BatchDistanceWithBound(q, ..., bound, out) writes out[i]
//    bit-identical to Distance(q, row_i) whenever that distance is
//    <= bound; abandoned rows only promise out[i] > bound. Callers may
//    only test out[i] <= bound.
//  * No NaNs are produced for finite inputs, including abandoned rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/hybrid_tree.h"
#include "core/node.h"
#include "data/generators.h"
#include "geometry/kernels/kernels.h"
#include "geometry/metrics.h"

namespace ht {
namespace {

constexpr size_t kPageSize = 16384;

/// All SIMD tiers this host can run, scalar first.
std::vector<kernels::SimdTier> SupportedTiers() {
  std::vector<kernels::SimdTier> tiers = {kernels::SimdTier::kScalar};
  if (kernels::TierSupported(kernels::SimdTier::kAvx2)) {
    tiers.push_back(kernels::SimdTier::kAvx2);
  }
  if (kernels::TierSupported(kernels::SimdTier::kAvx512)) {
    tiers.push_back(kernels::SimdTier::kAvx512);
  }
  return tiers;
}

/// Forces a tier for the enclosing scope.
class ScopedTier {
 public:
  explicit ScopedTier(kernels::SimdTier tier) { kernels::ForceTier(tier); }
  ~ScopedTier() { kernels::ClearForcedTier(); }
};

/// Builds the metric under test by index (owning pointer so the fixture
/// can sweep heterogeneous metric types).
std::unique_ptr<DistanceMetric> MakeMetric(int which, uint32_t dim) {
  switch (which) {
    case 0:
      return std::make_unique<L1Metric>();
    case 1:
      return std::make_unique<L2Metric>();
    case 2:
      return std::make_unique<LInfMetric>();
    case 3: {
      std::vector<double> w(dim);
      for (uint32_t d = 0; d < dim; ++d) w[d] = 0.25 + 0.1 * d;
      return std::make_unique<WeightedL2Metric>(std::move(w));
    }
    case 4:
      // Generic Lp: exercises the default (virtual per-row) batch path.
      return std::make_unique<LpMetric>(2.5);
    default: {
      // Identity quadratic form: also the default batch path.
      std::vector<double> eye(static_cast<size_t>(dim) * dim, 0.0);
      for (uint32_t d = 0; d < dim; ++d) eye[static_cast<size_t>(d) * dim + d] = 1.0;
      return std::make_unique<QuadraticFormMetric>(dim, std::move(eye));
    }
  }
}

Dataset MakeData(int which, size_t n, uint32_t dim, Rng& rng) {
  switch (which) {
    case 0:
      return GenFourier(n, dim, rng);
    case 1:
      return GenColhist(n, dim, rng);
    default:
      return GenUniform(n, dim, rng);
  }
}

/// Serializes rows of `data` (plus edge rows) into a data page and returns
/// the scan. The query vector is appended as a row too (distance 0 edge).
DataNode FillNode(const Dataset& data, uint32_t dim,
                  const std::vector<float>& query) {
  DataNode node;
  const size_t capacity = DataNode::Capacity(dim, kPageSize);
  const size_t n = std::min(data.size(), capacity - 3);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    node.entries.push_back({i, std::vector<float>(row.begin(), row.end())});
  }
  // Edge rows: all-zero, all-one, and an exact copy of the query.
  node.entries.push_back({9000, std::vector<float>(dim, 0.0f)});
  node.entries.push_back({9001, std::vector<float>(dim, 1.0f)});
  node.entries.push_back({9002, query});
  return node;
}

struct KernelCase {
  int metric;
  int dataset;
  uint32_t dim;
};

std::string KernelCaseName(const ::testing::TestParamInfo<KernelCase>& info) {
  static const char* kMetrics[] = {"L1",  "L2",  "LInf",
                                   "WL2", "Lp25", "Quad"};
  static const char* kData[] = {"fourier", "colhist", "uniform"};
  const KernelCase& c = info.param;
  return std::string(kMetrics[c.metric]) + "_" + kData[c.dataset] + "_d" +
         std::to_string(c.dim);
}

class BatchKernelSweep : public ::testing::TestWithParam<KernelCase> {};

TEST_P(BatchKernelSweep, BitIdenticalToScalar) {
  const KernelCase& c = GetParam();
  Rng rng(4242 + c.metric * 7 + c.dataset * 3 + c.dim);
  Dataset data = MakeData(c.dataset, 200, c.dim, rng);
  auto metric = MakeMetric(c.metric, c.dim);

  std::vector<float> query(c.dim);
  for (uint32_t d = 0; d < c.dim; ++d) {
    query[d] = static_cast<float>(rng.NextDouble());
  }

  DataNode node = FillNode(data, c.dim, query);
  std::vector<uint8_t> page(kPageSize);
  node.Serialize(page.data(), kPageSize, c.dim);
  DataPageScan scan(page.data(), kPageSize, c.dim);
  ASSERT_TRUE(scan.ok());
  const size_t n = scan.count();
  ASSERT_EQ(n, node.entries.size());
  const float* blk = scan.block();
  if (blk == nullptr) GTEST_SKIP() << "big-endian host: no block fast path";

  // Scalar reference, computed through the per-row virtual interface
  // (Distance() is plain scalar code at any tier).
  std::vector<double> ref(n);
  for (size_t i = 0; i < n; ++i) ref[i] = metric->Distance(query, scan.vec(i));

  // Every supported SIMD tier must reproduce the scalar results bitwise —
  // the dispatch-tier sweep behind the HT_SIMD contract.
  for (const kernels::SimdTier tier : SupportedTiers()) {
    ScopedTier forced(tier);
    const std::string tag = std::string(" tier ") + kernels::TierName(tier);

    // Unbounded kernel: bit-identical everywhere.
    std::vector<double> batch(n, -1.0);
    metric->BatchDistance(query, blk, scan.stride_floats(), n, batch.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_FALSE(std::isnan(batch[i])) << "row " << i << tag;
      ASSERT_EQ(std::bit_cast<uint64_t>(batch[i]),
                std::bit_cast<uint64_t>(ref[i]))
          << "row " << i << ": batch " << batch[i] << " vs scalar " << ref[i]
          << tag;
    }

    // Bounded kernel at several bounds, including 0, a mid quantile and
    // +inf (where it must agree with the unbounded kernel everywhere).
    std::vector<double> sorted_ref = ref;
    std::sort(sorted_ref.begin(), sorted_ref.end());
    const double bounds[] = {0.0, sorted_ref[n / 4], sorted_ref[n / 2],
                             sorted_ref[n - 1],
                             std::numeric_limits<double>::infinity()};
    for (double bound : bounds) {
      std::vector<double> bd(n, -1.0);
      metric->BatchDistanceWithBound(query, blk, scan.stride_floats(), n,
                                     bound, bd.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_FALSE(std::isnan(bd[i]))
            << "row " << i << " bound " << bound << tag;
        if (ref[i] <= bound) {
          ASSERT_EQ(std::bit_cast<uint64_t>(bd[i]),
                    std::bit_cast<uint64_t>(ref[i]))
              << "row " << i << " bound " << bound << tag;
        } else {
          ASSERT_GT(bd[i], bound) << "row " << i << tag;
        }
      }
    }
  }
}

TEST_P(BatchKernelSweep, EmptyPageIsANoOp) {
  const KernelCase& c = GetParam();
  auto metric = MakeMetric(c.metric, c.dim);
  DataNode empty;
  std::vector<uint8_t> page(kPageSize);
  empty.Serialize(page.data(), kPageSize, c.dim);
  DataPageScan scan(page.data(), kPageSize, c.dim);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.count(), 0u);
  const std::vector<float> query(c.dim, 0.5f);
  double sentinel = -7.0;
  // n == 0 must not read pts or write out (pts may be null-ish here).
  metric->BatchDistance(query, scan.block(), scan.stride_floats(), 0,
                        &sentinel);
  metric->BatchDistanceWithBound(query, scan.block(), scan.stride_floats(), 0,
                                 0.5, &sentinel);
  EXPECT_EQ(sentinel, -7.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMetricsDataDims, BatchKernelSweep,
    ::testing::ValuesIn([] {
      std::vector<KernelCase> cases;
      for (int m = 0; m < 6; ++m) {
        for (int ds = 0; ds < 3; ++ds) {
          for (uint32_t dim : {8u, 16u, 32u}) {
            cases.push_back({m, ds, dim});
          }
        }
      }
      return cases;
    }()),
    KernelCaseName);

// ---------------------------------------------------------------------------
// End-to-end byte-identity: batched hot path vs scalar reference path.
// ---------------------------------------------------------------------------

std::unique_ptr<HybridTree> BuildTree(const Dataset& data, uint32_t dim,
                                      bool disable_batch, MemPagedFile* file) {
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = 4096;
  o.disable_batch_kernels = disable_batch;
  auto tree = HybridTree::Create(o, file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  return tree;
}

TEST(BatchPathByteIdentity, BoxRangeKnnMatchScalarPath) {
  const uint32_t dim = 16;
  Rng rng(515);
  Dataset data = GenFourier(3000, dim, rng);

  MemPagedFile f_batch(4096), f_scalar(4096);
  auto batch_tree = BuildTree(data, dim, /*disable_batch=*/false, &f_batch);
  auto scalar_tree = BuildTree(data, dim, /*disable_batch=*/true, &f_scalar);

  L2Metric l2;
  L1Metric l1;
  for (int q = 0; q < 25; ++q) {
    std::vector<float> center(dim), lo(dim), hi(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      center[d] = static_cast<float>(rng.NextDouble());
      const float side = static_cast<float>(0.1 + 0.4 * rng.NextDouble());
      lo[d] = center[d] - side;
      hi[d] = center[d] + side;
    }
    Box box = Box::FromBounds(lo, hi);

    // Box: identical ids in identical order (exercises per-point and,
    // with the unit cube below, the scan-level containment path).
    auto b0 = batch_tree->SearchBox(box).ValueOrDie();
    auto b1 = scalar_tree->SearchBox(box).ValueOrDie();
    EXPECT_EQ(b0, b1) << "box query " << q;

    // Range: bounded kernel vs scalar loop.
    const double radius = 0.2 + 0.6 * rng.NextDouble();
    auto r0 = batch_tree->SearchRange(center, radius, l2).ValueOrDie();
    auto r1 = scalar_tree->SearchRange(center, radius, l2).ValueOrDie();
    EXPECT_EQ(r0, r1) << "range query " << q;
    auto r2 = batch_tree->SearchRange(center, radius, l1).ValueOrDie();
    auto r3 = scalar_tree->SearchRange(center, radius, l1).ValueOrDie();
    EXPECT_EQ(r2, r3) << "L1 range query " << q;

    // k-NN: bit-identical (distance, id) pairs in identical order.
    for (size_t k : {1u, 10u, 64u}) {
      auto n0 = batch_tree->SearchKnn(center, k, l2).ValueOrDie();
      auto n1 = scalar_tree->SearchKnn(center, k, l2).ValueOrDie();
      ASSERT_EQ(n0.size(), n1.size()) << "knn query " << q << " k " << k;
      for (size_t i = 0; i < n0.size(); ++i) {
        EXPECT_EQ(std::bit_cast<uint64_t>(n0[i].first),
                  std::bit_cast<uint64_t>(n1[i].first))
            << "knn query " << q << " k " << k << " rank " << i;
        EXPECT_EQ(n0[i].second, n1[i].second)
            << "knn query " << q << " k " << k << " rank " << i;
      }
    }
  }

  // The whole space: every leaf is contained, so the batched tree takes
  // the scan-level "emit everything" shortcut on every data page.
  auto all0 = batch_tree->SearchBox(Box::UnitCube(dim)).ValueOrDie();
  auto all1 = scalar_tree->SearchBox(Box::UnitCube(dim)).ValueOrDie();
  EXPECT_EQ(all0, all1);
  EXPECT_EQ(all0.size(), data.size());
}

// Reference implementations for the directory-node box predicates: the
// plain per-dimension ordered-compare loops every SIMD tier must match
// boolean-for-boolean (NaN bounds included).
bool RefIntersects(const std::vector<float>& alo, const std::vector<float>& ahi,
                   const std::vector<float>& blo,
                   const std::vector<float>& bhi) {
  for (size_t d = 0; d < alo.size(); ++d) {
    if (bhi[d] < alo[d] || blo[d] > ahi[d]) return false;
  }
  return true;
}

bool RefContains(const std::vector<float>& alo, const std::vector<float>& ahi,
                 const std::vector<float>& blo, const std::vector<float>& bhi) {
  for (size_t d = 0; d < alo.size(); ++d) {
    if (blo[d] < alo[d] || bhi[d] > ahi[d]) return false;
  }
  return true;
}

// Box-predicate kernels: every tier must agree with the scalar reference
// on random near-boundary boxes at every dim 1..40 (sweeping the AVX2
// 8-lane and AVX-512 16-lane bodies plus every tail length), including
// shared-edge touching, containment, emptiness, and NaN bounds.
TEST(BoxKernelSweep, AllTiersMatchScalarReference) {
  Rng rng(20260809);
  for (uint32_t dim = 1; dim <= 40; ++dim) {
    for (int rep = 0; rep < 200; ++rep) {
      std::vector<float> alo(dim), ahi(dim), blo(dim), bhi(dim);
      for (uint32_t d = 0; d < dim; ++d) {
        // Draw from a small lattice so exact ties (shared edges) and
        // containment happen often, not almost never.
        const float a0 = static_cast<float>(rng.NextBelow(9)) / 8.0f;
        const float a1 = static_cast<float>(rng.NextBelow(9)) / 8.0f;
        const float b0 = static_cast<float>(rng.NextBelow(9)) / 8.0f;
        const float b1 = static_cast<float>(rng.NextBelow(9)) / 8.0f;
        alo[d] = std::min(a0, a1);
        ahi[d] = std::max(a0, a1);
        blo[d] = std::min(b0, b1);
        bhi[d] = std::max(b0, b1);
      }
      // Mutations: empty interval in one box, NaN bound, exact copy.
      const int mut = rep % 10;
      if (mut == 7) {
        std::swap(blo[dim / 2], bhi[dim / 2]);  // maybe-empty probe box
      } else if (mut == 8) {
        bhi[dim / 2] = std::numeric_limits<float>::quiet_NaN();
      } else if (mut == 9) {
        blo = alo;
        bhi = ahi;
      }
      const bool want_int = RefIntersects(alo, ahi, blo, bhi);
      const bool want_con = RefContains(alo, ahi, blo, bhi);
      for (const kernels::SimdTier tier : SupportedTiers()) {
        const kernels::KernelTable& t = kernels::TableForTier(tier);
        EXPECT_EQ(t.box_intersects(alo.data(), ahi.data(), blo.data(),
                                   bhi.data(), dim),
                  want_int)
            << "tier=" << kernels::TierName(tier) << " dim=" << dim
            << " rep=" << rep;
        EXPECT_EQ(t.box_contains(alo.data(), ahi.data(), blo.data(),
                                 bhi.data(), dim),
                  want_con)
            << "tier=" << kernels::TierName(tier) << " dim=" << dim
            << " rep=" << rep;
      }
      // The Box methods dispatch through the active tier; pin each tier
      // and re-check through the public API.
      const Box a = Box::FromBounds(alo, ahi);
      const Box b = Box::FromBounds(blo, bhi);
      for (const kernels::SimdTier tier : SupportedTiers()) {
        ScopedTier forced(tier);
        EXPECT_EQ(a.Intersects(b), want_int);
        EXPECT_EQ(a.ContainsBox(b), want_con);
      }
    }
  }
}

// NaN bounds must never prove disjointness (ordered compares): a box with
// a NaN coordinate intersects and is contained, on every tier.
TEST(BoxKernelSweep, NanBoundsNeverProveDisjointness) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (uint32_t dim : {1u, 7u, 8u, 9u, 16u, 17u, 33u}) {
    std::vector<float> lo(dim, 0.25f), hi(dim, 0.75f);
    std::vector<float> nlo(dim, 0.25f), nhi(dim, 0.75f);
    nlo[dim - 1] = nan;
    nhi[dim - 1] = nan;
    for (const kernels::SimdTier tier : SupportedTiers()) {
      const kernels::KernelTable& t = kernels::TableForTier(tier);
      EXPECT_TRUE(
          t.box_intersects(lo.data(), hi.data(), nlo.data(), nhi.data(), dim))
          << kernels::TierName(tier) << " dim=" << dim;
      EXPECT_TRUE(
          t.box_contains(lo.data(), hi.data(), nlo.data(), nhi.data(), dim))
          << kernels::TierName(tier) << " dim=" << dim;
    }
  }
}

// Satellite: Lp metric names are trimmed ("L2", not "L2.000000").
TEST(MetricNameTest, LpNamesAreTrimmed) {
  EXPECT_EQ(LpMetric(2.0).Name(), "L2");
  EXPECT_EQ(LpMetric(1.0).Name(), "L1");
  EXPECT_EQ(LpMetric(2.5).Name(), "L2.5");
}

}  // namespace
}  // namespace ht
