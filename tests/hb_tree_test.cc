// Tests for the hB-tree baseline: routing correctness under holey-brick
// splits and split posting is the critical property.

#include "baselines/hb_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

TEST(HbTreeTest, MatchesBruteForceBoxSearch) {
  Rng rng(541);
  Dataset data = GenUniform(3000, 4, rng);
  MemPagedFile file(512);
  auto tree = HbTree::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok()) << i;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int q = 0; q < 30; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.3);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query)) << q;
  }
}

TEST(HbTreeTest, SkewedDataStressesHoleyBricks) {
  // Heavily skewed clusters force uneven medians -> multi-constraint
  // corner extractions -> redundant references. Routing must survive.
  Rng rng(547);
  Dataset data = GenClustered(6000, 5, 3, 0.02, rng);
  MemPagedFile file(512);
  auto tree = HbTree::Create(5, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok()) << i;
    if (i % 1000 == 999) {
      ASSERT_TRUE(tree->CheckInvariants().ok()) << "after " << i;
    }
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int q = 0; q < 20; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.2);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query)) << q;
  }
  HbStats stats = tree->ComputeStats().ValueOrDie();
  EXPECT_GT(stats.data_nodes, 0u);
  EXPECT_GT(stats.index_nodes, 0u);
  // Utilization guarantee from [1/3, 2/3] extraction.
  EXPECT_GE(stats.min_data_utilization, 0.33 - 2.0 / 15.0);
}

TEST(HbTreeTest, RangeAndKnnMatchBruteForce) {
  Rng rng(557);
  Dataset data = GenClustered(2000, 3, 4, 0.06, rng);
  MemPagedFile file(512);
  auto tree = HbTree::Create(3, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  L1Metric l1;
  for (int q = 0; q < 10; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    auto got = tree->SearchRange(centers[0], 0.3, l1).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceRange(data, centers[0], 0.3, l1));
    auto got_k = tree->SearchKnn(centers[0], 10, l1).ValueOrDie();
    auto want_k = BruteForceKnn(data, centers[0], 10, l1);
    ASSERT_EQ(got_k.size(), want_k.size());
    for (size_t i = 0; i < got_k.size(); ++i) {
      ASSERT_NEAR(got_k[i].first, want_k[i].first, 1e-9);
    }
  }
}

TEST(HbTreeTest, DeleteNotSupported) {
  MemPagedFile file(512);
  auto tree = HbTree::Create(2, &file).ValueOrDie();
  const std::vector<float> p = {0.5f, 0.5f};
  ASSERT_TRUE(tree->Insert(p, 1).ok());
  EXPECT_EQ(tree->Delete(p, 1).code(), StatusCode::kNotSupported);
}

TEST(HbTreeTest, RedundantReferencesAreCounted) {
  // Table 1: hB-trees pay storage redundancy. On skewed data, at least
  // some splits need multiple constraints, creating multi-references.
  Rng rng(563);
  // Exponentially skewed data maximizes uneven medians.
  const uint32_t dim = 4;
  Dataset data(dim, 12000);
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.MutableRow(i);
    for (uint32_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(
          std::min(1.0, rng.NextExponential(8.0)));
    }
  }
  MemPagedFile file(512);
  auto tree = HbTree::Create(dim, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  HbStats stats = tree->ComputeStats().ValueOrDie();
  EXPECT_GT(stats.multi_step_splits, 0u);
  EXPECT_GT(stats.redundant_refs + stats.multi_parent_nodes, 0u);
}

TEST(HbTreeTest, DuplicatePointsRejectedCleanly) {
  MemPagedFile file(512);
  auto tree = HbTree::Create(2, &file).ValueOrDie();
  const std::vector<float> p = {0.25f, 0.75f};
  const size_t cap = tree->data_node_capacity();
  Status last = Status::OK();
  for (size_t i = 0; i <= cap + 1 && last.ok(); ++i) {
    last = tree->Insert(p, i);
  }
  EXPECT_FALSE(last.ok());
}

}  // namespace
}  // namespace ht
