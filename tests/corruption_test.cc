// Failure injection: a disk-based index must turn torn/garbled pages into
// Corruption errors, never crashes or silent wrong answers.

#include <gtest/gtest.h>

#include "core/hybrid_tree.h"
#include "data/generators.h"

namespace ht {
namespace {

struct Fixture {
  MemPagedFile file{1024};
  std::unique_ptr<HybridTree> tree;
  Dataset data;

  Fixture() {
    Rng rng(1801);
    data = GenUniform(2000, 4, rng);
    HybridTreeOptions o;
    o.dim = 4;
    o.page_size = 1024;
    tree = HybridTree::Create(o, &file).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      HT_CHECK_OK(tree->Insert(data.Row(i), i));
    }
    HT_CHECK_OK(tree->Flush());
  }

  /// Overwrites raw bytes of page `id` directly in the backing file and
  /// invalidates cached state by reopening the tree.
  void Corrupt(PageId id, size_t offset, std::initializer_list<uint8_t> bytes) {
    Page p(1024);
    HT_CHECK_OK(file.Read(id, &p));
    size_t o = offset;
    for (uint8_t b : bytes) p.data()[o++] = b;
    HT_CHECK_OK(file.Write(id, p));
  }
};

TEST(CorruptionTest, GarbledRootKindByte) {
  Fixture f;
  const PageId root = f.tree->root_page();
  HT_CHECK_OK(f.tree->Flush());
  f.Corrupt(root, 0, {0x77});
  // Reopen so no cached parse survives.
  auto tree = HybridTree::Open(&f.file);
  // Open itself may succeed (meta is fine); the next search must fail
  // cleanly.
  if (tree.ok()) {
    auto r = tree.ValueOrDie()->SearchBox(Box::UnitCube(4));
    EXPECT_FALSE(r.ok());
  }
}

TEST(CorruptionTest, GarbledMetaPage) {
  Fixture f;
  f.Corrupt(0, 0, {0xde, 0xad, 0xbe, 0xef, 0x42});
  auto tree = HybridTree::Open(&f.file);
  EXPECT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsCorruption());
}

TEST(CorruptionTest, KdChildIndexOutOfRange) {
  // Hand-craft an index page whose kd record points past the record count.
  std::vector<uint8_t> page(512, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  page[1] = 1;   // level
  page[2] = 1;   // kd count = 1
  page[3] = 0;
  page[4] = 0;   // tag = internal
  page[5] = 0;   // dim u16
  page[6] = 0;
  // lsp/rsp floats (zeros fine), then left/right indices out of range.
  page[15] = 9;  // left index low byte
  auto r = IndexNode::Deserialize(page.data(), page.size(), false, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(CorruptionTest, PreorderCycleRejected) {
  // An internal record referencing an EARLIER index would create a cycle;
  // the decoder must refuse.
  std::vector<uint8_t> page(512, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  page[1] = 1;
  page[2] = 2;  // two records
  page[3] = 0;
  size_t off = 4;
  page[off] = 0;  // internal
  // dim=0, lsp=rsp=0 -> bytes already zero; indices: left=0 (self!),right=1
  page[off + 11] = 0;
  page[off + 13] = 1;
  off += 15;
  page[off] = 1;  // leaf, child 7
  page[off + 1] = 7;
  auto r = IndexNode::Deserialize(page.data(), page.size(), false, 0);
  EXPECT_FALSE(r.ok());
}

TEST(CorruptionTest, DataPageScanRejectsWrongKind) {
  std::vector<uint8_t> page(256, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  DataPageScan scan(page.data(), page.size(), 4);
  EXPECT_FALSE(scan.ok());
}

TEST(CorruptionTest, DataPageScanRejectsOversizedCount) {
  std::vector<uint8_t> page(256, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kData);
  page[2] = 0xff;  // count 0xffff — cannot fit
  page[3] = 0xff;
  DataPageScan scan(page.data(), page.size(), 4);
  EXPECT_FALSE(scan.ok());
  EXPECT_EQ(scan.count(), 0u);
}

TEST(CorruptionTest, TruncatedDatasetFileRejected) {
  const std::string path =
      std::string(::testing::TempDir()) + "/truncated.htds";
  Rng rng(1802);
  Dataset d = GenUniform(100, 4, rng);
  ASSERT_TRUE(d.SaveTo(path).ok());
  // Truncate the body.
  FILE* fp = fopen(path.c_str(), "r+");
  ASSERT_EQ(ftruncate(fileno(fp), 64), 0);
  fclose(fp);
  EXPECT_FALSE(Dataset::LoadFrom(path).ok());
}

}  // namespace
}  // namespace ht
