// Failure injection: a disk-based index must turn torn/garbled pages into
// Corruption errors, never crashes or silent wrong answers.

#include <gtest/gtest.h>

#include <cstring>

#include "core/hybrid_tree.h"
#include "data/generators.h"

namespace ht {
namespace {

struct Fixture {
  MemPagedFile file{1024};
  std::unique_ptr<HybridTree> tree;
  Dataset data;

  Fixture() {
    Rng rng(1801);
    data = GenUniform(2000, 4, rng);
    HybridTreeOptions o;
    o.dim = 4;
    o.page_size = 1024;
    tree = HybridTree::Create(o, &file).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      HT_CHECK_OK(tree->Insert(data.Row(i), i));
    }
    HT_CHECK_OK(tree->Flush());
  }

  /// Overwrites raw bytes of page `id` directly in the backing file and
  /// invalidates cached state by reopening the tree.
  void Corrupt(PageId id, size_t offset, std::initializer_list<uint8_t> bytes) {
    Page p(1024);
    HT_CHECK_OK(file.Read(id, &p));
    size_t o = offset;
    for (uint8_t b : bytes) p.data()[o++] = b;
    HT_CHECK_OK(file.Write(id, p));
  }
};

TEST(CorruptionTest, GarbledRootKindByte) {
  Fixture f;
  const PageId root = f.tree->root_page();
  HT_CHECK_OK(f.tree->Flush());
  f.Corrupt(root, 0, {0x77});
  // Reopen so no cached parse survives.
  auto tree = HybridTree::Open(&f.file);
  // Open itself may succeed (meta is fine); the next search must fail
  // cleanly.
  if (tree.ok()) {
    auto r = tree.ValueOrDie()->SearchBox(Box::UnitCube(4));
    EXPECT_FALSE(r.ok());
  }
}

TEST(CorruptionTest, GarbledMetaPage) {
  Fixture f;
  f.Corrupt(0, 0, {0xde, 0xad, 0xbe, 0xef, 0x42});
  auto tree = HybridTree::Open(&f.file);
  EXPECT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsCorruption());
}

TEST(CorruptionTest, KdChildIndexOutOfRange) {
  // Hand-craft an index page whose kd record points past the record count.
  std::vector<uint8_t> page(512, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  page[1] = 1;   // level
  page[2] = 1;   // kd count = 1
  page[3] = 0;
  page[4] = 0;   // tag = internal
  page[5] = 0;   // dim u16
  page[6] = 0;
  // lsp/rsp floats (zeros fine), then left/right indices out of range.
  page[15] = 9;  // left index low byte
  auto r = IndexNode::Deserialize(page.data(), page.size(), false, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(CorruptionTest, PreorderCycleRejected) {
  // An internal record referencing an EARLIER index would create a cycle;
  // the decoder must refuse.
  std::vector<uint8_t> page(512, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  page[1] = 1;
  page[2] = 2;  // two records
  page[3] = 0;
  size_t off = 4;
  page[off] = 0;  // internal
  // dim=0, lsp=rsp=0 -> bytes already zero; indices: left=0 (self!),right=1
  page[off + 11] = 0;
  page[off + 13] = 1;
  off += 15;
  page[off] = 1;  // leaf, child 7
  page[off + 1] = 7;
  auto r = IndexNode::Deserialize(page.data(), page.size(), false, 0);
  EXPECT_FALSE(r.ok());
}

TEST(CorruptionTest, AliasedKdChildrenRejected) {
  // An internal record with left == right passes the stale-slot null
  // checks and then double-moves the child, leaving a half-linked node
  // whose traversal dereferences null (found by fuzz_node). Must be
  // rejected at decode time.
  std::vector<uint8_t> page(512, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  page[1] = 1;  // level
  page[2] = 3;  // three records
  page[3] = 0;
  size_t off = 4;
  page[off] = 0;        // internal
  page[off + 11] = 1;   // left = 1
  page[off + 13] = 1;   // right = 1 (aliased!)
  off += 15;
  page[off] = 1;  // leaf, child 5
  page[off + 1] = 5;
  off += 5;
  page[off] = 1;  // leaf, child 6
  page[off + 1] = 6;
  auto r = IndexNode::Deserialize(page.data(), page.size(), false, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(CorruptionTest, DataPageScanRejectsWrongKind) {
  std::vector<uint8_t> page(256, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  DataPageScan scan(page.data(), page.size(), 4);
  EXPECT_FALSE(scan.ok());
}

TEST(CorruptionTest, DataPageScanRejectsOversizedCount) {
  std::vector<uint8_t> page(256, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kData);
  page[2] = 0xff;  // count 0xffff — cannot fit
  page[3] = 0xff;
  DataPageScan scan(page.data(), page.size(), 4);
  EXPECT_FALSE(scan.ok());
  EXPECT_EQ(scan.count(), 0u);
}

// --- seeded semantic corruptions ------------------------------------------
//
// Damage that deserializes FINE — every field parses, every range check in
// Deserialize passes — but breaks a structural promise. Only the deep
// validator (TreeValidator, reached through CheckInvariants) can see it.

struct SeededFixture {
  static constexpr size_t kPage = 1024;
  MemPagedFile file{kPage};
  std::unique_ptr<HybridTree> tree;
  Dataset data;
  size_t code_bytes = 0;

  SeededFixture() {
    Rng rng(1803);
    data = GenUniform(2000, 4, rng);
    HybridTreeOptions o;
    o.dim = 4;
    o.page_size = kPage;
    // In-page ELS: the codes live in the index pages themselves, so byte
    // corruption survives a reopen (kInMemory would recompute them).
    o.els_mode = ElsMode::kInPage;
    tree = HybridTree::Create(o, &file).ValueOrDie();
    code_bytes = (2 * o.dim * o.els_bits + 7) / 8;
    for (size_t i = 0; i < data.size(); ++i) {
      HT_CHECK_OK(tree->Insert(data.Row(i), i));
    }
    HT_CHECK_OK(tree->Flush());
  }

  /// Offsets of the kd records of a serialized index page, in preorder.
  /// Record layout: internal = tag u8, dim u16, lsp f32, rsp f32, left
  /// u16, right u16; leaf = tag u8, child u32, ELS code bytes.
  struct Record {
    size_t offset;
    bool leaf;
  };
  std::vector<Record> ScanRecords(const Page& p) {
    uint16_t count = 0;
    std::memcpy(&count, p.data() + 2, 2);
    std::vector<Record> recs;
    size_t off = 4;
    for (uint16_t i = 0; i < count; ++i) {
      const bool leaf = p.data()[off] == 1;
      recs.push_back({off, leaf});
      off += leaf ? (5 + code_bytes) : 15;
    }
    return recs;
  }

  Status ReopenAndValidate() {
    auto reopened = HybridTree::Open(&file);
    if (!reopened.ok()) return reopened.status();
    return reopened.ValueOrDie()->CheckInvariants();
  }
};

TEST(CorruptionTest, ValidatorDetectsFlippedSplitPositions) {
  SeededFixture f;
  Page p(SeededFixture::kPage);
  HT_CHECK_OK(f.file.Read(f.tree->root_page(), &p));
  auto recs = f.ScanRecords(p);
  ASSERT_FALSE(recs.empty());
  ASSERT_FALSE(recs[0].leaf) << "root kd record should be an internal split";
  // lsp/rsp pushed outside the node's region: a split can never partition
  // space it does not own.
  const float bad_lsp = -0.5f, bad_rsp = 1.5f;
  std::memcpy(p.data() + recs[0].offset + 3, &bad_lsp, 4);
  std::memcpy(p.data() + recs[0].offset + 7, &bad_rsp, 4);
  HT_CHECK_OK(f.file.Write(f.tree->root_page(), p));
  Status s = f.ReopenAndValidate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("split positions"), std::string::npos)
      << s.ToString();
}

TEST(CorruptionTest, ValidatorDetectsTruncatedElsWords) {
  SeededFixture f;
  Page p(SeededFixture::kPage);
  HT_CHECK_OK(f.file.Read(f.tree->root_page(), &p));
  auto recs = f.ScanRecords(p);
  // Zero a leaf's ELS words: the code now decodes to a degenerate corner
  // box that cannot cover the child's data.
  bool patched = false;
  for (const auto& r : recs) {
    if (!r.leaf) continue;
    std::memset(p.data() + r.offset + 5, 0, f.code_bytes);
    patched = true;
    break;
  }
  ASSERT_TRUE(patched);
  HT_CHECK_OK(f.file.Write(f.tree->root_page(), p));
  Status s = f.ReopenAndValidate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(CorruptionTest, ValidatorDetectsChildPointingAtMetaPage) {
  SeededFixture f;
  Page p(SeededFixture::kPage);
  HT_CHECK_OK(f.file.Read(f.tree->root_page(), &p));
  auto recs = f.ScanRecords(p);
  bool patched = false;
  for (const auto& r : recs) {
    if (!r.leaf) continue;
    const uint32_t meta = 0;
    std::memcpy(p.data() + r.offset + 1, &meta, 4);
    patched = true;
    break;
  }
  ASSERT_TRUE(patched);
  HT_CHECK_OK(f.file.Write(f.tree->root_page(), p));
  Status s = f.ReopenAndValidate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("meta page"), std::string::npos) << s.ToString();
}

TEST(CorruptionTest, ValidatorDetectsDuplicatedChildPage) {
  SeededFixture f;
  Page p(SeededFixture::kPage);
  HT_CHECK_OK(f.file.Read(f.tree->root_page(), &p));
  auto recs = f.ScanRecords(p);
  // Point two kd leaves at the same child: a shared subtree (or cycle)
  // that every per-page check is blind to.
  std::vector<size_t> leaves;
  for (const auto& r : recs) {
    if (r.leaf) leaves.push_back(r.offset);
  }
  ASSERT_GE(leaves.size(), 2u);
  std::memcpy(p.data() + leaves[1] + 1, p.data() + leaves[0] + 1, 4);
  HT_CHECK_OK(f.file.Write(f.tree->root_page(), p));
  Status s = f.ReopenAndValidate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("more than once"), std::string::npos)
      << s.ToString();
}

TEST(CorruptionTest, TruncatedDatasetFileRejected) {
  const std::string path =
      std::string(::testing::TempDir()) + "/truncated.htds";
  Rng rng(1802);
  Dataset d = GenUniform(100, 4, rng);
  ASSERT_TRUE(d.SaveTo(path).ok());
  // Truncate the body.
  FILE* fp = fopen(path.c_str(), "r+");
  ASSERT_EQ(ftruncate(fileno(fp), 64), 0);
  fclose(fp);
  EXPECT_FALSE(Dataset::LoadFrom(path).ok());
}

}  // namespace
}  // namespace ht
