// Persistence tests: Flush to a DiskPagedFile, reopen, verify identical
// query answers and intact invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(HybridTreePersistenceTest, FlushReopenAnswersIdentically) {
  const std::string path = TempPath("tree_roundtrip.htf");
  Rng rng(301);
  Dataset data = GenClustered(2000, 4, 5, 0.08, rng);
  std::vector<Box> queries;
  for (int q = 0; q < 20; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    queries.push_back(MakeBoxQuery(centers[0], 0.25));
  }

  std::vector<std::vector<uint64_t>> expected;
  {
    auto file = DiskPagedFile::Create(path, 1024).ValueOrDie();
    HybridTreeOptions o;
    o.dim = 4;
    o.page_size = 1024;
    o.els_mode = ElsMode::kInMemory;
    auto tree = HybridTree::Create(o, file.get()).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
    }
    for (const Box& q : queries) {
      auto r = tree->SearchBox(q).ValueOrDie();
      std::sort(r.begin(), r.end());
      expected.push_back(std::move(r));
    }
    ASSERT_TRUE(tree->Flush().ok());
  }
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    auto tree = HybridTree::Open(file.get()).ValueOrDie();
    EXPECT_EQ(tree->size(), data.size());
    EXPECT_EQ(tree->options().dim, 4u);
    EXPECT_EQ(tree->options().els_mode, ElsMode::kInMemory);
    ASSERT_TRUE(tree->CheckInvariants().ok());
    for (size_t q = 0; q < queries.size(); ++q) {
      auto r = tree->SearchBox(queries[q]).ValueOrDie();
      std::sort(r.begin(), r.end());
      ASSERT_EQ(r, expected[q]) << "query " << q;
    }
    // The reopened tree stays writable.
    std::vector<float> p = {0.5f, 0.5f, 0.5f, 0.5f};
    ASSERT_TRUE(tree->Insert(p, 999999).ok());
    EXPECT_EQ(tree->size(), data.size() + 1);
    ASSERT_TRUE(tree->CheckInvariants().ok());
  }
}

TEST(HybridTreePersistenceTest, InPageElsFullyPersistent) {
  const std::string path = TempPath("tree_elspage.htf");
  Rng rng(307);
  Dataset data = GenUniform(1500, 3, rng);
  uint64_t accesses_before = 0;
  Box query = MakeBoxQuery(data.Row(3), 0.15);
  {
    auto file = DiskPagedFile::Create(path, 1024).ValueOrDie();
    HybridTreeOptions o;
    o.dim = 3;
    o.page_size = 1024;
    o.els_mode = ElsMode::kInPage;
    o.els_bits = 4;
    auto tree = HybridTree::Create(o, file.get()).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
    }
    tree->pool().ResetStats();
    (void)tree->SearchBox(query).ValueOrDie();
    accesses_before = tree->pool().stats().logical_reads;
    ASSERT_TRUE(tree->Flush().ok());
  }
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    auto tree = HybridTree::Open(file.get()).ValueOrDie();
    ASSERT_TRUE(tree->CheckInvariants().ok());
    tree->pool().ResetStats();
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query));
    // In-page codes persist exactly: access counts match pre-flush.
    EXPECT_EQ(tree->pool().stats().logical_reads, accesses_before);
  }
}

TEST(HybridTreePersistenceTest, InMemoryElsRebuiltOnOpen) {
  const std::string path = TempPath("tree_elsmem.htf");
  Rng rng(311);
  Dataset data = GenClustered(1500, 3, 4, 0.05, rng);
  {
    auto file = DiskPagedFile::Create(path, 1024).ValueOrDie();
    HybridTreeOptions o;
    o.dim = 3;
    o.page_size = 1024;
    o.els_mode = ElsMode::kInMemory;
    o.els_bits = 4;
    auto tree = HybridTree::Create(o, file.get()).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
  }
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    auto tree = HybridTree::Open(file.get()).ValueOrDie();
    // Invariants include ELS conservativeness — this verifies the rebuild
    // produced valid codes.
    ASSERT_TRUE(tree->CheckInvariants().ok());
    TreeStats s = tree->ComputeStats().ValueOrDie();
    EXPECT_GT(s.els_sidecar_bytes, 0u);
    // Queries still exact.
    Rng rng2(313);
    for (int q = 0; q < 10; ++q) {
      auto centers = MakeQueryCenters(data, 1, rng2);
      Box query = MakeBoxQuery(centers[0], 0.2);
      auto got = tree->SearchBox(query).ValueOrDie();
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, BruteForceBox(data, query));
    }
  }
}

TEST(HybridTreePersistenceTest, OpenRejectsNonTreeFile) {
  const std::string path = TempPath("not_a_tree.htf");
  auto file = DiskPagedFile::Create(path, 512).ValueOrDie();
  EXPECT_FALSE(HybridTree::Open(file.get()).ok());  // empty file
  (void)file->Allocate().ValueOrDie();               // page 0 exists, zeroed
  EXPECT_FALSE(HybridTree::Open(file.get()).ok());
}

}  // namespace
}  // namespace ht
