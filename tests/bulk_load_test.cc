// Tests for bottom-up bulk loading.

#include "core/bulk_load.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

HybridTreeOptions Opts(uint32_t dim, size_t page = 1024) {
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = page;
  return o;
}

TEST(BulkLoadTest, EmptyAndTinyDatasets) {
  MemPagedFile f1(1024);
  auto empty = BulkLoad(Opts(4), &f1, Dataset(4, 0)).ValueOrDie();
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_TRUE(empty->CheckInvariants().ok());

  Rng rng(1601);
  Dataset tiny = GenUniform(5, 4, rng);
  MemPagedFile f2(1024);
  auto tree = BulkLoad(Opts(4), &f2, tiny).ValueOrDie();
  EXPECT_EQ(tree->size(), 5u);
  EXPECT_EQ(tree->height(), 0u);  // fits in one data page
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(BulkLoadTest, InvariantsAndExactQueries) {
  Rng rng(1602);
  Dataset data = GenClustered(8000, 6, 5, 0.07, rng);
  MemPagedFile file(1024);
  auto tree = BulkLoad(Opts(6), &file, data).ValueOrDie();
  ASSERT_EQ(tree->size(), data.size());
  ASSERT_GE(tree->height(), 1u);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (int q = 0; q < 20; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.25);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query)) << q;
  }
  L1Metric l1;
  auto knn = tree->SearchKnn(data.Row(0), 10, l1).ValueOrDie();
  auto want = BruteForceKnn(data, data.Row(0), 10, l1);
  for (size_t i = 0; i < knn.size(); ++i) {
    ASSERT_NEAR(knn[i].first, want[i].first, 1e-9);
  }
}

TEST(BulkLoadTest, PacksTighterThanIncrementalInsertion) {
  Rng rng(1603);
  Dataset data = GenUniform(6000, 8, rng);
  MemPagedFile f1(1024), f2(1024);
  auto bulk = BulkLoad(Opts(8), &f1, data).ValueOrDie();
  auto incr = HybridTree::Create(Opts(8), &f2).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(incr->Insert(data.Row(i), i).ok());
  }
  TreeStats sb = bulk->ComputeStats().ValueOrDie();
  TreeStats si = incr->ComputeStats().ValueOrDie();
  EXPECT_GT(sb.avg_data_utilization, 0.8);   // fill target 0.9
  EXPECT_LT(sb.data_nodes, si.data_nodes);   // fewer, fuller pages
}

TEST(BulkLoadTest, TreeStaysDynamicAfterLoad) {
  Rng rng(1604);
  Dataset data = GenUniform(3000, 4, rng);
  MemPagedFile file(1024);
  auto tree = BulkLoad(Opts(4), &file, data).ValueOrDie();
  // Insert more, delete some, re-check.
  Rng rng2(1605);
  Dataset more = GenUniform(500, 4, rng2);
  for (size_t i = 0; i < more.size(); ++i) {
    ASSERT_TRUE(tree->Insert(more.Row(i), 100000 + i).ok());
  }
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree->Delete(data.Row(i), i).ok());
  }
  EXPECT_EQ(tree->size(), 3000u + 500 - 300);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(BulkLoadTest, PersistsLikeAnyTree) {
  const std::string path =
      std::string(::testing::TempDir()) + "/bulk_persist.htf";
  Rng rng(1606);
  Dataset data = GenClustered(4000, 5, 4, 0.06, rng);
  Box query = MakeBoxQuery(data.Row(7), 0.3);
  std::vector<uint64_t> expect;
  {
    auto file = DiskPagedFile::Create(path, 1024).ValueOrDie();
    HybridTreeOptions o = Opts(5);
    auto tree = BulkLoad(o, file.get(), data).ValueOrDie();
    expect = tree->SearchBox(query).ValueOrDie();
    std::sort(expect.begin(), expect.end());
    ASSERT_TRUE(tree->Flush().ok());
  }
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    auto tree = HybridTree::Open(file.get()).ValueOrDie();
    ASSERT_TRUE(tree->CheckInvariants().ok());
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
  }
}

TEST(BulkLoadTest, RejectsBadInput) {
  Rng rng(1607);
  Dataset data = GenUniform(100, 4, rng);
  MemPagedFile file(1024);
  EXPECT_FALSE(BulkLoad(Opts(5), &file, data).ok());  // dim mismatch
  Dataset bad(2, 1);
  bad.MutableRow(0)[0] = 2.0f;  // outside [0,1]
  MemPagedFile file2(1024);
  EXPECT_FALSE(BulkLoad(Opts(2), &file2, bad).ok());
}

TEST(BulkLoadTest, DuplicateHeavyData) {
  Dataset data(3, 500);
  Rng rng(1608);
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.MutableRow(i);
    row[0] = 0.5f;  // constant
    row[1] = (i % 5) * 0.2f;  // five distinct values
    row[2] = static_cast<float>(rng.NextDouble());
  }
  MemPagedFile file(512);
  auto tree = BulkLoad(Opts(3, 512), &file, data).ValueOrDie();
  EXPECT_EQ(tree->size(), 500u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  auto got = tree->SearchBox(Box::UnitCube(3)).ValueOrDie();
  EXPECT_EQ(got.size(), 500u);
}

TEST(BulkLoadTest, DuplicateHeavyColhistMeetsUtilizationFloor) {
  // Regression: normalized color histograms are full of exact zeros; the
  // tie-avoiding cut must not strand an under-filled leaf.
  Rng rng(1609);
  Dataset data = GenColhist(5000, 64, rng);
  data.NormalizeUnitCube();
  MemPagedFile file(kDefaultPageSize);
  HybridTreeOptions o;
  o.dim = 64;
  auto tree = BulkLoad(o, &file, data).ValueOrDie();
  EXPECT_TRUE(tree->CheckInvariants().ok());
  TreeStats s = tree->ComputeStats().ValueOrDie();
  const double cap = static_cast<double>(tree->data_node_capacity());
  EXPECT_GE(s.min_data_utilization * cap + 1e-6,
            std::floor(o.data_node_min_util * cap));
}

TEST(BulkLoadTest, ParallelLoadIsByteIdenticalToSerial) {
  // The parallel loader's whole contract: same partition cuts, same page
  // ids in the same depth-first leaf order, same bytes — for any thread
  // count. Compare every allocated page of the flushed files.
  Rng rng(1610);
  Dataset data = GenClustered(9000, 8, 4, 0.1, rng);
  MemPagedFile serial_file(1024);
  auto serial = BulkLoad(Opts(8), &serial_file, data).ValueOrDie();
  ASSERT_TRUE(serial->Flush().ok());

  for (size_t threads : {2u, 4u}) {
    MemPagedFile par_file(1024);
    BulkLoadOptions bulk;
    bulk.threads = threads;
    auto parallel = BulkLoad(Opts(8), &par_file, data, bulk).ValueOrDie();
    ASSERT_TRUE(parallel->Flush().ok());

    ASSERT_EQ(par_file.page_count(), serial_file.page_count()) << threads;
    EXPECT_EQ(parallel->size(), serial->size());
    EXPECT_EQ(parallel->height(), serial->height());
    EXPECT_EQ(parallel->root_page(), serial->root_page());
    for (PageId id = 0; id < serial_file.page_count(); ++id) {
      Page a(1024), b(1024);
      // Page 1 is the freed bulk-load placeholder: unallocated in both.
      if (!serial_file.Read(id, &a).ok()) {
        EXPECT_FALSE(par_file.Read(id, &b).ok()) << "page " << id;
        continue;
      }
      ASSERT_TRUE(par_file.Read(id, &b).ok()) << "page " << id;
      for (size_t j = 0; j < 1024; ++j) {
        ASSERT_EQ(a.data()[j], b.data()[j])
            << threads << " threads, page " << id << ", byte " << j;
      }
    }
    EXPECT_TRUE(parallel->CheckInvariants().ok());
  }
}

TEST(BulkLoadTest, ParallelLoadHandlesSmallAndDuplicateData) {
  // Degenerate shapes through the parallel path: datasets smaller than
  // one chunk per worker, and duplicate-heavy data exercising the
  // clean-cut fallback inside worker tasks.
  Rng rng(1611);
  BulkLoadOptions bulk;
  bulk.threads = 4;

  Dataset tiny = GenUniform(5, 4, rng);
  MemPagedFile f1(1024);
  auto tree = BulkLoad(Opts(4), &f1, tiny, bulk).ValueOrDie();
  EXPECT_EQ(tree->size(), 5u);
  EXPECT_TRUE(tree->CheckInvariants().ok());

  Dataset dup(3, 500);
  for (size_t i = 0; i < dup.size(); ++i) {
    auto row = dup.MutableRow(i);
    row[0] = 0.5f;
    row[1] = (i % 5) * 0.2f;
    row[2] = static_cast<float>(rng.NextDouble());
  }
  MemPagedFile f2(512);
  auto dup_tree = BulkLoad(Opts(3, 512), &f2, dup, bulk).ValueOrDie();
  EXPECT_EQ(dup_tree->size(), 500u);
  EXPECT_TRUE(dup_tree->CheckInvariants().ok());
  EXPECT_EQ(dup_tree->SearchBox(Box::UnitCube(3)).ValueOrDie().size(), 500u);
}

}  // namespace
}  // namespace ht
