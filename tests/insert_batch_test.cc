// Tests for HybridTree::InsertBatch: query-result equivalence with a loop
// of single Inserts, split handling across node overflows, and the
// validate-before-mutation contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/hybrid_tree.h"
#include "data/generators.h"

namespace ht {
namespace {

HybridTreeOptions SmallOpts(uint32_t dim, size_t page_size = 512) {
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = page_size;
  return o;
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Flattens rows [begin, end) of `data` for InsertBatch.
void FlattenRows(const Dataset& data, size_t begin, size_t end,
                 std::vector<float>* points, std::vector<uint64_t>* ids) {
  points->clear();
  ids->clear();
  for (size_t i = begin; i < end; ++i) {
    auto row = data.Row(i);
    points->insert(points->end(), row.begin(), row.end());
    ids->push_back(i);
  }
}

/// A box around the unit-cube center with the given half side.
Box CenterBox(uint32_t dim, float half) {
  Box b = Box::UnitCube(dim);
  for (uint32_t d = 0; d < dim; ++d) {
    b.set_lo(d, 0.5f - half);
    b.set_hi(d, 0.5f + half);
  }
  return b;
}

TEST(InsertBatchTest, MatchesInsertLoopOnEveryQuery) {
  const uint32_t kDim = 8;
  const size_t kN = 1200;
  Rng rng(20260806);
  Dataset data = GenFourier(kN, kDim, rng);

  MemPagedFile file_a(512), file_b(512);
  auto loop_tree = HybridTree::Create(SmallOpts(kDim), &file_a).ValueOrDie();
  auto batch_tree = HybridTree::Create(SmallOpts(kDim), &file_b).ValueOrDie();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(loop_tree->Insert(data.Row(i), i).ok());
  }
  // Odd chunk size so batches straddle node splits at varying offsets.
  std::vector<float> points;
  std::vector<uint64_t> ids;
  for (size_t begin = 0; begin < kN; begin += 97) {
    const size_t end = std::min(begin + 97, kN);
    FlattenRows(data, begin, end, &points, &ids);
    ASSERT_TRUE(batch_tree->InsertBatch(points, ids).ok()) << begin;
  }

  EXPECT_EQ(batch_tree->size(), loop_tree->size());
  EXPECT_TRUE(batch_tree->CheckInvariants().ok());
  // The stored set is identical, so every query answer must be too (the
  // internal split structure may differ; compare sorted id sets).
  EXPECT_EQ(Sorted(batch_tree->SearchBox(Box::UnitCube(kDim)).ValueOrDie()),
            Sorted(loop_tree->SearchBox(Box::UnitCube(kDim)).ValueOrDie()));
  for (float half : {0.05f, 0.15f, 0.3f, 0.45f}) {
    const Box q = CenterBox(kDim, half);
    EXPECT_EQ(Sorted(batch_tree->SearchBox(q).ValueOrDie()),
              Sorted(loop_tree->SearchBox(q).ValueOrDie()))
        << "half side " << half;
  }
  // k-NN distances agree too (sorted multisets of distances; id-level
  // tie-breaks may legitimately differ between structures).
  std::vector<float> center(kDim, 0.5f);
  auto a = loop_tree->SearchKnn(center, 10, L2Metric()).ValueOrDie();
  auto b = batch_tree->SearchKnn(center, 10, L2Metric()).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].first, b[i].first) << i;
  }
}

TEST(InsertBatchTest, OneBatchFromEmptyTreeSplitsAllTheWayUp) {
  const uint32_t kDim = 8;
  const size_t kN = 1500;
  Rng rng(99);
  Dataset data = GenFourier(kN, kDim, rng);
  MemPagedFile file(512);
  auto tree = HybridTree::Create(SmallOpts(kDim), &file).ValueOrDie();
  std::vector<float> points;
  std::vector<uint64_t> ids;
  FlattenRows(data, 0, kN, &points, &ids);
  ASSERT_TRUE(tree->InsertBatch(points, ids).ok());
  EXPECT_EQ(tree->size(), kN);
  EXPECT_GT(tree->height(), 0u);  // the root grew past a single data node
  EXPECT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->SearchBox(Box::UnitCube(kDim)).ValueOrDie().size(), kN);
}

TEST(InsertBatchTest, ValidatesWholeBatchBeforeMutating) {
  const uint32_t kDim = 4;
  MemPagedFile file(512);
  auto tree = HybridTree::Create(SmallOpts(kDim), &file).ValueOrDie();
  std::vector<float> seed(kDim, 0.25f);
  ASSERT_TRUE(tree->Insert(seed, 7).ok());

  // Last row is out of range: the whole batch must be refused with the
  // tree untouched — not applied up to the bad row.
  std::vector<float> points = {0.1f, 0.1f, 0.1f, 0.1f,   //
                               0.2f, 0.2f, 0.2f, 0.2f,   //
                               0.3f, 0.3f, 1.5f, 0.3f};  // bad
  std::vector<uint64_t> ids = {10, 11, 12};
  EXPECT_TRUE(tree->InsertBatch(points, ids).IsInvalidArgument());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(tree->SearchBox(Box::UnitCube(kDim)).ValueOrDie(),
            std::vector<uint64_t>{7});

  // Length mismatch between points and ids.
  std::vector<float> short_points(kDim * 2 - 1, 0.5f);
  EXPECT_TRUE(
      tree->InsertBatch(short_points, std::vector<uint64_t>{1, 2})
          .IsInvalidArgument());
  // Empty batch is a no-op.
  EXPECT_TRUE(tree->InsertBatch({}, {}).ok());
  EXPECT_EQ(tree->size(), 1u);
}

TEST(InsertBatchTest, InterleavesWithSingleInserts) {
  const uint32_t kDim = 6;
  const size_t kN = 900;
  Rng rng(7);
  Dataset data = GenFourier(kN, kDim, rng);
  MemPagedFile file_a(512), file_b(512);
  auto loop_tree = HybridTree::Create(SmallOpts(kDim), &file_a).ValueOrDie();
  auto mixed_tree = HybridTree::Create(SmallOpts(kDim), &file_b).ValueOrDie();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(loop_tree->Insert(data.Row(i), i).ok());
  }
  std::vector<float> points;
  std::vector<uint64_t> ids;
  size_t i = 0;
  while (i < kN) {
    if (i % 3 == 0 && i + 50 <= kN) {
      FlattenRows(data, i, i + 50, &points, &ids);
      ASSERT_TRUE(mixed_tree->InsertBatch(points, ids).ok());
      i += 50;
    } else {
      ASSERT_TRUE(mixed_tree->Insert(data.Row(i), i).ok());
      ++i;
    }
  }
  EXPECT_EQ(mixed_tree->size(), loop_tree->size());
  EXPECT_TRUE(mixed_tree->CheckInvariants().ok());
  EXPECT_EQ(Sorted(mixed_tree->SearchBox(Box::UnitCube(kDim)).ValueOrDie()),
            Sorted(loop_tree->SearchBox(Box::UnitCube(kDim)).ValueOrDie()));
}

}  // namespace
}  // namespace ht
