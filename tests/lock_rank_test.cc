// Copyright 2026 The HybridTree Authors.
// Tests for the annotated sync wrappers (common/sync.h) and the runtime
// lock-rank checker (common/lock_rank.h): correct-order nesting passes,
// an inverted pair aborts, condition-variable waits unwind the rank stack,
// and the wrappers behave exactly like the std types they wrap.

#include "common/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/lock_rank.h"

namespace ht {
namespace {

/// Flips rank checking on for the test body and restores the previous
/// state afterwards (the default depends on HT_DEBUG_LOCK_RANK).
class ScopedRankChecking {
 public:
  explicit ScopedRankChecking(bool on) : prev_(lock_rank::Enabled()) {
    lock_rank::SetEnabled(on);
  }
  ~ScopedRankChecking() { lock_rank::SetEnabled(prev_); }

 private:
  bool prev_;
};

TEST(LockRankTest, CorrectOrderNestingPasses) {
  ScopedRankChecking on(true);
  Mutex outer{LockRank::kCacheManager, "test-outer"};
  Mutex mid{LockRank::kPoolShard, "test-mid"};
  Mutex inner{LockRank::kPoolFile, "test-inner"};
  // The deepest legal chain in the table: 1200 -> 200 -> 100.
  MutexLock a(&outer);
  MutexLock b(&mid);
  MutexLock c(&inner);
  const std::vector<uint32_t> held = lock_rank::HeldRanks();
  ASSERT_EQ(held.size(), 3u);
  EXPECT_EQ(held[0], 1200u);
  EXPECT_EQ(held[1], 200u);
  EXPECT_EQ(held[2], 100u);
}

TEST(LockRankTest, RepeatedDisjointAcquisitionsPass) {
  ScopedRankChecking on(true);
  Mutex a{LockRank::kThreadPool, "test-a"};
  Mutex b{LockRank::kQuantStore, "test-b"};
  // Acquire-release-before-next never nests, so any order is fine.
  for (int i = 0; i < 3; ++i) {
    { MutexLock la(&a); }
    { MutexLock lb(&b); }
  }
  EXPECT_TRUE(lock_rank::HeldRanks().empty());
}

TEST(LockRankDeathTest, InvertedPairAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ScopedRankChecking on(true);
  Mutex inner{LockRank::kPoolFile, "test-file"};
  Mutex outer{LockRank::kPoolShard, "test-shard"};
  EXPECT_DEATH(
      {
        lock_rank::SetEnabled(true);
        MutexLock a(&inner);   // rank 100 first...
        MutexLock b(&outer);   // ...then 200: inversion.
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ScopedRankChecking on(true);
  Mutex a{LockRank::kServeScatter, "test-scatter-a"};
  Mutex b{LockRank::kServeScatter, "test-scatter-b"};
  // Locks sharing a rank must never be held simultaneously.
  EXPECT_DEATH(
      {
        lock_rank::SetEnabled(true);
        MutexLock la(&a);
        MutexLock lb(&b);
      },
      "lock-rank violation");
}

TEST(LockRankTest, SharedMutexParticipatesInRanking) {
  ScopedRankChecking on(true);
  SharedMutex outer{LockRank::kServerTenantMap, "test-map"};
  Mutex inner{LockRank::kServerTenantStats, "test-stats"};
  // The Snapshot nesting: map shared (1100) -> stats exclusive (800).
  ReaderLock r(&outer);
  MutexLock l(&inner);
  const std::vector<uint32_t> held = lock_rank::HeldRanks();
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held[0], 1100u);
  EXPECT_EQ(held[1], 800u);
}

TEST(LockRankTest, CondVarWaitUnwindsRankStack) {
  ScopedRankChecking on(true);
  Mutex mu{LockRank::kThreadPool, "test-cv-mu"};
  CondVar cv;
  bool ready = false;
  std::vector<uint32_t> held_during_wait;

  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(lock);
    // Reacquired after the wait: the rank must be recorded again.
    held_during_wait = lock_rank::HeldRanks();
  });

  // Let the waiter block, then signal under the lock. If the wait did not
  // pop kThreadPool from the waiter's stack, this thread's acquisition
  // would still be fine (stacks are per-thread) — what we check is that
  // the WAITER's stack is correct after wake-up, and that a lower-rank
  // acquisition inside the wait window of the same thread doesn't trip.
  {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  }
  waiter.join();
  ASSERT_EQ(held_during_wait.size(), 1u);
  EXPECT_EQ(held_during_wait[0], 700u);
  EXPECT_TRUE(lock_rank::HeldRanks().empty());
}

TEST(LockRankTest, WaitWindowAllowsFreshHigherRankAcquisition) {
  // While blocked in Wait the mutex's rank is off the stack, so the
  // runnable code of OTHER threads is unaffected; here we check the
  // subtler property directly: after PrepareWait pops the rank, the same
  // thread (woken, pre-FinishWait) conceptually holds nothing. We can't
  // interleave inside Wait from a test, so approximate: a wait in a loop
  // followed by a higher-rank acquisition after release must pass.
  ScopedRankChecking on(true);
  Mutex low{LockRank::kPoolFile, "test-low"};
  Mutex high{LockRank::kCacheManager, "test-high"};
  CondVar cv;
  {
    MutexLock lock(&low);
    cv.WaitUntil(lock, std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(1));
  }
  // low released; acquiring the much higher rank now must be legal.
  MutexLock lock(&high);
  EXPECT_EQ(lock_rank::HeldRanks().size(), 1u);
}

TEST(LockRankTest, UnrankedMutexesAreInvisible) {
  ScopedRankChecking on(true);
  Mutex ranked{LockRank::kPoolShard, "test-ranked"};
  Mutex unranked;  // default: invisible to the checker
  MutexLock a(&ranked);
  MutexLock b(&unranked);  // "inversion" against rank 200 — but unranked
  EXPECT_EQ(lock_rank::HeldRanks().size(), 1u);
}

TEST(LockRankTest, OutOfOrderReleaseIsLegal) {
  ScopedRankChecking on(true);
  Mutex outer{LockRank::kCacheManager, "test-outer"};
  Mutex inner{LockRank::kPoolShard, "test-inner"};
  outer.Lock();
  inner.Lock();
  outer.Unlock();  // release the OUTER lock first
  EXPECT_EQ(lock_rank::HeldRanks(), std::vector<uint32_t>{200u});
  inner.Unlock();
  EXPECT_TRUE(lock_rank::HeldRanks().empty());
}

TEST(LockRankTest, TryLockSkipsOrderCheck) {
  ScopedRankChecking on(true);
  Mutex inner{LockRank::kPoolFile, "test-file"};
  Mutex outer{LockRank::kPoolShard, "test-shard"};
  MutexLock a(&inner);
  // An out-of-order try_lock cannot deadlock (it would just fail), so a
  // successful one records the hold without aborting.
  ASSERT_TRUE(outer.TryLock());
  EXPECT_EQ(lock_rank::HeldRanks().size(), 2u);
  outer.Unlock();
}

TEST(LockRankTest, DisabledCheckerRecordsNothing) {
  ScopedRankChecking off(false);
  Mutex inner{LockRank::kPoolFile, "test-file"};
  Mutex outer{LockRank::kPoolShard, "test-shard"};
  // The inversion is invisible with checking off (release builds).
  MutexLock a(&inner);
  MutexLock b(&outer);
  EXPECT_TRUE(lock_rank::HeldRanks().empty());
}

// --- wrapper behavioral equivalence with the std types -------------------

TEST(SyncWrapperTest, MutexProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SyncWrapperTest, TryLockFailsWhileHeld) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> got{true};
  std::thread other([&] { got = mu.TryLock(); });
  other.join();
  EXPECT_FALSE(got.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncWrapperTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  std::atomic<int> readers{0};
  std::atomic<int> max_readers{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      ReaderLock lock(&mu);
      const int now = readers.fetch_add(1, std::memory_order_relaxed) + 1;
      int prev = max_readers.load(std::memory_order_relaxed);
      while (prev < now && !max_readers.compare_exchange_weak(
                               prev, now, std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      readers.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(max_readers.load(), 2);  // readers genuinely overlapped
}

TEST(SyncWrapperTest, WriterExcludesReaders) {
  SharedMutex mu;
  int value = 0;
  std::atomic<bool> reader_started{false};
  mu.Lock();  // writer holds the lock while `value` is stale
  std::thread reader([&] {
    reader_started = true;
    ReaderLock r(&mu);
    // The reader can only get here after the writer released, so it must
    // observe the store made under the writer lock.
    EXPECT_EQ(value, 42);
  });
  while (!reader_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  value = 42;
  mu.Unlock();
  reader.join();
}

TEST(SyncWrapperTest, CondVarSignalsPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(lock);
    observed = 1;
  });
  {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  }
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(SyncWrapperTest, WaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(cv.WaitUntil(lock, deadline), std::cv_status::timeout);
}

TEST(SyncWrapperTest, RelockableGuardDropAndReacquire) {
  Mutex mu;
  MutexLock lock(&mu);
  lock.Unlock();
  // While dropped, another thread can take the mutex.
  std::thread other([&] {
    MutexLock inner(&mu);
  });
  other.join();
  lock.Lock();  // reacquire; destructor releases
}

TEST(SyncWrapperTest, DisabledGuardNeverLocks) {
  Mutex mu;
  MutexLock disabled(&mu, /*enabled=*/false);
  // The mutex is genuinely free: a TryLock from this thread succeeds
  // (it would deadlock or fail if the guard had locked it).
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncWrapperTest, RoleIsZeroCostAndReentrant) {
  // The Role capability must be a pure annotation: nested and repeated
  // acquisition in any combination is a runtime no-op.
  Role role;
  {
    ExclusiveRole w(&role);
    SharedRole r(&role);  // nested shared-under-exclusive: still a no-op
    ExclusiveRole w2(&role);
  }
  SharedRole r(&role);
}

}  // namespace
}  // namespace ht
