// Tests for the convenience / audit APIs: SearchPoint, CountBox, ScanAll,
// per-level statistics, and DumpTree smoke.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

struct Fixture {
  MemPagedFile file{1024};
  std::unique_ptr<HybridTree> tree;
  Dataset data;

  Fixture() {
    Rng rng(2101);
    data = GenClustered(3000, 4, 5, 0.07, rng);
    HybridTreeOptions o;
    o.dim = 4;
    o.page_size = 1024;
    tree = HybridTree::Create(o, &file).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      HT_CHECK_OK(tree->Insert(data.Row(i), i));
    }
  }
};

TEST(HybridTreeApiTest, SearchPointFindsExactMatchesOnly) {
  Fixture f;
  auto hits = f.tree->SearchPoint(f.data.Row(42)).ValueOrDie();
  ASSERT_GE(hits.size(), 1u);
  bool found = false;
  for (uint64_t id : hits) {
    // Every hit must be at exactly that point.
    EXPECT_EQ(std::vector<float>(f.data.Row(id).begin(),
                                 f.data.Row(id).end()),
              std::vector<float>(f.data.Row(42).begin(),
                                 f.data.Row(42).end()));
    if (id == 42) found = true;
  }
  EXPECT_TRUE(found);
  // A point not in the dataset yields nothing.
  std::vector<float> nowhere = {0.987f, 0.123f, 0.456f, 0.789f};
  EXPECT_TRUE(f.tree->SearchPoint(nowhere).ValueOrDie().empty());
}

TEST(HybridTreeApiTest, CountBoxMatchesSearchBox) {
  Fixture f;
  Rng rng(2103);
  for (int q = 0; q < 10; ++q) {
    auto centers = MakeQueryCenters(f.data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.3);
    EXPECT_EQ(f.tree->CountBox(query).ValueOrDie(),
              f.tree->SearchBox(query).ValueOrDie().size());
  }
}

TEST(HybridTreeApiTest, ScanAllVisitsEveryEntryOnce) {
  Fixture f;
  std::map<uint64_t, std::vector<float>> seen;
  HT_CHECK_OK(f.tree->ScanAll([&](uint64_t id, std::span<const float> v) {
    EXPECT_TRUE(
        seen.emplace(id, std::vector<float>(v.begin(), v.end())).second)
        << "duplicate id " << id;
  }));
  ASSERT_EQ(seen.size(), f.data.size());
  for (const auto& [id, vec] : seen) {
    ASSERT_EQ(vec, std::vector<float>(f.data.Row(id).begin(),
                                      f.data.Row(id).end()));
  }
}

TEST(HybridTreeApiTest, ScanAllReadsEachPageOnce) {
  Fixture f;
  TreeStats s = f.tree->ComputeStats().ValueOrDie();
  f.tree->pool().ResetStats();
  HT_CHECK_OK(f.tree->ScanAll([](uint64_t, std::span<const float>) {}));
  EXPECT_EQ(f.tree->pool().stats().logical_reads,
            s.data_nodes + s.index_nodes);
}

TEST(HybridTreeApiTest, PerLevelStatsAreConsistent) {
  Fixture f;
  TreeStats s = f.tree->ComputeStats().ValueOrDie();
  ASSERT_EQ(s.levels.size(), static_cast<size_t>(f.tree->height()) + 1);
  // Root level first, data level (0) last.
  EXPECT_EQ(s.levels.front().level, f.tree->height());
  EXPECT_EQ(s.levels.back().level, 0u);
  EXPECT_EQ(s.levels.front().nodes, 1u);  // single root
  // Level-0 children are the entries; each level's children equal the node
  // count of the level below.
  EXPECT_EQ(s.levels.back().children, f.tree->size());
  for (size_t i = 0; i + 1 < s.levels.size(); ++i) {
    EXPECT_EQ(s.levels[i].children, s.levels[i + 1].nodes)
        << "level " << s.levels[i].level;
  }
  uint64_t total_nodes = 0;
  for (const auto& lv : s.levels) total_nodes += lv.nodes;
  EXPECT_EQ(total_nodes, s.data_nodes + s.index_nodes);
  EXPECT_NE(s.ToString().find("level 0"), std::string::npos);
}

TEST(HybridTreeApiTest, ApiErrorsOnDimMismatch) {
  Fixture f;
  std::vector<float> wrong = {0.5f};
  EXPECT_TRUE(f.tree->SearchPoint(wrong).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ht
