// Integration tests for the prefetching I/O pipeline (core + storage +
// exec): prefetch is a pure I/O-scheduling optimisation, so every query
// must return byte-identical results — and identical logical-read counts,
// the paper's figure-of-merit — at any prefetch depth, while the number of
// blocking read round trips drops. Runs clean under ThreadSanitizer (the
// CI tsan job executes this binary).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"
#include "exec/query_executor.h"
#include "exec/thread_pool.h"
#include "geometry/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/latency_injecting_file.h"
#include "storage/paged_file.h"

namespace ht {
namespace {

constexpr uint32_t kDim = 8;
constexpr size_t kPoints = 3000;
constexpr size_t kQueries = 12;
constexpr size_t kK = 10;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "prefetch_test_" + name;
}

/// Per-depth answers for one pass of cold box + range + kNN queries.
struct Answers {
  std::vector<std::vector<uint64_t>> box;
  std::vector<std::vector<uint64_t>> range;
  std::vector<std::vector<std::pair<double, uint64_t>>> knn;
  uint64_t logical_reads = 0;
};

/// FOURIER tree persisted into a MemPagedFile; every test reopens those
/// bytes through a small buffer pool so queries actually miss.
class PrefetchIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    data_ = GenFourier(kPoints, kDim, rng);
    file_ = std::make_unique<MemPagedFile>();
    HybridTreeOptions opts;
    opts.dim = kDim;
    auto tree = BulkLoad(opts, file_.get(), data_).ValueOrDie();
    ASSERT_TRUE(tree->Flush().ok());
    pool_pages_ = std::max<size_t>(8, file_->page_count() / 10);

    const double side = CalibrateBoxSide(data_, 0.01, 10, rng);
    auto centers = MakeQueryCenters(data_, kQueries, rng);
    for (const auto& c : centers) {
      boxes_.push_back(MakeBoxQuery(c, side));
      centers_.push_back(std::vector<float>(c.begin(), c.end()));
    }
    radius_ = CalibrateRangeRadius(data_, metric_, 0.01, 10, rng);
  }

  /// Opens the persisted tree with the given prefetch depth and runs every
  /// query cold (EvictAll first), collecting exact results.
  Answers RunCold(PagedFile* file, size_t depth) {
    Answers a;
    auto tree = HybridTree::Open(file, pool_pages_).ValueOrDie();
    tree->SetPrefetchDepth(depth);
    tree->pool().ResetStats();
    SearchScratch scratch;
    for (size_t i = 0; i < kQueries; ++i) {
      EXPECT_TRUE(tree->pool().EvictAll().ok());
      std::vector<uint64_t> ids;
      EXPECT_TRUE(tree->SearchBoxInto(boxes_[i], &scratch, &ids).ok());
      a.box.push_back(ids);
      EXPECT_TRUE(tree->pool().EvictAll().ok());
      EXPECT_TRUE(tree->SearchRangeInto(centers_[i], radius_, metric_,
                                        &scratch, &ids).ok());
      a.range.push_back(ids);
      EXPECT_TRUE(tree->pool().EvictAll().ok());
      std::vector<std::pair<double, uint64_t>> nn;
      EXPECT_TRUE(
          tree->SearchKnnInto(centers_[i], kK, metric_, &scratch, &nn).ok());
      a.knn.push_back(nn);
    }
    a.logical_reads = tree->pool().StatsSnapshot().logical_reads;
    return a;
  }

  Dataset data_;
  std::unique_ptr<MemPagedFile> file_;
  size_t pool_pages_ = 0;
  L2Metric metric_;
  std::vector<Box> boxes_;
  std::vector<std::vector<float>> centers_;
  double radius_ = 0.0;
};

TEST_F(PrefetchIntegrationTest, ColdQueriesByteIdenticalAcrossDepths) {
  Answers base = RunCold(file_.get(), 0);
  // The workloads must actually select something, or identity is vacuous.
  size_t box_hits = 0, range_hits = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    box_hits += base.box[i].size();
    range_hits += base.range[i].size();
    ASSERT_EQ(base.knn[i].size(), kK);
  }
  ASSERT_GT(box_hits, 0u);
  ASSERT_GT(range_hits, 0u);

  for (size_t depth : {2u, 8u}) {
    Answers got = RunCold(file_.get(), depth);
    for (size_t i = 0; i < kQueries; ++i) {
      EXPECT_EQ(got.box[i], base.box[i]) << "depth " << depth << " q" << i;
      EXPECT_EQ(got.range[i], base.range[i]) << "depth " << depth << " q" << i;
      EXPECT_EQ(got.knn[i], base.knn[i]) << "depth " << depth << " q" << i;
    }
    // Prefetch counts no logical reads: the paper's disk-access
    // figure-of-merit is invariant under the pipeline.
    EXPECT_EQ(got.logical_reads, base.logical_reads) << "depth " << depth;
  }
}

TEST_F(PrefetchIntegrationTest, PrefetchReducesBlockingRoundTrips) {
  std::vector<uint64_t> trips;
  for (size_t depth : {0u, 8u}) {
    LatencyInjectingPagedFile latfile(file_.get());  // zero latency: counting
    auto tree = HybridTree::Open(&latfile, pool_pages_).ValueOrDie();
    tree->SetPrefetchDepth(depth);
    latfile.ResetReadCalls();
    SearchScratch scratch;
    std::vector<std::pair<double, uint64_t>> nn;
    for (size_t i = 0; i < kQueries; ++i) {
      ASSERT_TRUE(tree->pool().EvictAll().ok());
      ASSERT_TRUE(
          tree->SearchKnnInto(centers_[i], kK, metric_, &scratch, &nn).ok());
    }
    trips.push_back(latfile.read_calls());
  }
  // Depth 8 batches the frontier: strictly fewer blocking round trips than
  // the one-page-per-miss baseline.
  EXPECT_LT(trips[1], trips[0]);
}

TEST_F(PrefetchIntegrationTest, DiskBackedTreeIdenticalAcrossDepths) {
  const std::string path = TempPath("disk.htf");
  {
    auto disk = DiskPagedFile::Create(path, kDefaultPageSize).ValueOrDie();
    HybridTreeOptions opts;
    opts.dim = kDim;
    auto tree = BulkLoad(opts, disk.get(), data_).ValueOrDie();
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_TRUE(disk->Sync().ok());
  }
  auto disk = DiskPagedFile::Open(path).ValueOrDie();
  Answers base = RunCold(disk.get(), 0);
  Answers got = RunCold(disk.get(), 8);
  for (size_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(got.box[i], base.box[i]) << "q" << i;
    EXPECT_EQ(got.range[i], base.range[i]) << "q" << i;
    EXPECT_EQ(got.knn[i], base.knn[i]) << "q" << i;
  }
  EXPECT_EQ(got.logical_reads, base.logical_reads);
  std::remove(path.c_str());
}

TEST_F(PrefetchIntegrationTest, ExecutorIoPoolMatchesSerialReference) {
  Answers base = RunCold(file_.get(), 0);

  auto tree = HybridTree::Open(file_.get(), pool_pages_).ValueOrDie();
  tree->SetPrefetchDepth(8);
  Workload w;
  for (size_t i = 0; i < kQueries; ++i) {
    w.queries.push_back(Query::MakeBox(boxes_[i]));
    w.queries.push_back(Query::MakeRange(centers_[i], radius_));
    w.queries.push_back(Query::MakeKnn(centers_[i], kK));
  }
  w.metric = &metric_;

  ThreadPool query_pool(4);
  ThreadPool io_pool(2);
  QueryExecutor exec(tree.get(), &query_pool);

  // Sharing one pool between queries and fills would deadlock the batch;
  // Run() must reject it up front.
  ExecOptions self;
  self.io_pool = &query_pool;
  EXPECT_TRUE(exec.Run(w, self).status().IsInvalidArgument());

  ExecOptions opts;
  opts.io_pool = &io_pool;
  auto report_r = exec.Run(w, opts);
  ASSERT_TRUE(report_r.ok()) << report_r.status().ToString();
  const BatchReport& report = *report_r;
  ASSERT_EQ(report.results.size(), 3 * kQueries);
  for (size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_TRUE(report.results[i].status.ok())
        << "slot " << i << ": " << report.results[i].status.ToString();
  }
  EXPECT_EQ(report.failed, 0u);
  for (size_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(report.results[3 * i].ids, base.box[i]) << "q" << i;
    EXPECT_EQ(report.results[3 * i + 1].ids, base.range[i]) << "q" << i;
    EXPECT_EQ(report.results[3 * i + 2].neighbors, base.knn[i]) << "q" << i;
  }
}

}  // namespace
}  // namespace ht
