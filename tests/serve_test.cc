// Serving front door: admission control (token bucket + bounded
// in-flight), Server deadline propagation of the REMAINING budget, and
// the metrics snapshot — in particular that rejected (rate overload,
// turned away) and expired (deadline burned in queue or scatter) are
// distinguishable counters.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "data/workload.h"
#include "exec/thread_pool.h"
#include "geometry/metrics.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/sharded_index.h"

namespace ht {
namespace {

// ---------------------------------------------------------------------
// AdmissionController

TEST(AdmissionTest, TokenBucketRejectsRateOverloadImmediately) {
  double now = 100.0;
  AdmissionController ctl([&] { return now; });
  TenantQuota quota;
  quota.rate_qps = 10.0;
  quota.burst = 2.0;
  ctl.SetQuota("t", quota);

  EXPECT_TRUE(ctl.Admit("t").ok());  // bucket starts full: 2 tokens
  EXPECT_TRUE(ctl.Admit("t").ok());
  auto third = ctl.Admit("t");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);

  now += 0.11;  // just over one token at 10 qps (0.10 exactly is FP-fragile)
  EXPECT_TRUE(ctl.Admit("t").ok());
  auto again = ctl.Admit("t");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, UnknownTenantIsUnlimited) {
  AdmissionController ctl;
  for (int i = 0; i < 100; ++i) {
    auto r = ctl.Admit("never-configured");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie().queue_wait_seconds(), 0.0);
  }
}

TEST(AdmissionTest, InFlightSlotQueuesAndReportsWait) {
  AdmissionController ctl;
  TenantQuota quota;
  quota.max_in_flight = 1;
  ctl.SetQuota("t", quota);

  auto first = ctl.Admit("t");
  ASSERT_TRUE(first.ok());

  // Second admission must wait until the first ticket releases its slot.
  std::atomic<bool> second_admitted{false};
  double waited = -1.0;
  std::thread blocked([&] {
    auto second = ctl.Admit("t", /*max_wait_seconds=*/5.0);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    waited = second.ValueOrDie().queue_wait_seconds();
    second_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load());
  first.ValueOrDie().Release();
  blocked.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_GE(waited, 0.03);  // it measurably queued behind the slot
}

TEST(AdmissionTest, InFlightTimeoutExpiresNotRejects) {
  AdmissionController ctl;
  TenantQuota quota;
  quota.max_in_flight = 1;
  ctl.SetQuota("t", quota);

  auto held = ctl.Admit("t");
  ASSERT_TRUE(held.ok());
  auto timed_out = ctl.Admit("t", /*max_wait_seconds=*/0.02);
  ASSERT_FALSE(timed_out.ok());
  // Queue timeout is a deadline event, distinct from rate rejection.
  EXPECT_TRUE(timed_out.status().IsDeadlineExceeded())
      << timed_out.status().ToString();
}

TEST(AdmissionTest, TicketReleaseIsIdempotentAndMoveSafe) {
  AdmissionController ctl;
  TenantQuota quota;
  quota.max_in_flight = 1;
  ctl.SetQuota("t", quota);
  {
    auto a = ctl.Admit("t");
    ASSERT_TRUE(a.ok());
    AdmissionTicket moved = std::move(a.ValueOrDie());
    moved.Release();
    moved.Release();  // no double-release of the slot
  }
  // Slot is free again.
  EXPECT_TRUE(ctl.Admit("t").ok());
}

// ---------------------------------------------------------------------
// RemainingBudget: the satellite-3 rule, unit-tested directly.

TEST(RemainingBudgetTest, ZeroBudgetMeansNoDeadline) {
  EXPECT_EQ(Server::RemainingBudget(0.0, 0.5), 0.0);
  EXPECT_EQ(Server::RemainingBudget(-1.0, 0.5), 0.0);
}

TEST(RemainingBudgetTest, SubtractsQueueingDelay) {
  EXPECT_DOUBLE_EQ(Server::RemainingBudget(1.0, 0.3), 0.7);
  EXPECT_DOUBLE_EQ(Server::RemainingBudget(1.0, 0.0), 1.0);
}

TEST(RemainingBudgetTest, OverspentBudgetGoesNonPositive) {
  EXPECT_LE(Server::RemainingBudget(0.1, 0.2), 0.0);
  EXPECT_LE(Server::RemainingBudget(0.1, 0.1), 0.0);
}

// ---------------------------------------------------------------------
// Server end-to-end

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    data_ = GenFourier(1200, 8, rng);
    opts_.dim = 8;
    ShardedIndexOptions so;
    so.shards = 3;
    auto index_r = ShardedIndex::Build(opts_, so, data_, nullptr);
    ASSERT_TRUE(index_r.ok()) << index_r.status().ToString();
    index_ = std::move(index_r).ValueUnsafe();

    auto centers = MakeQueryCenters(data_, 4, rng);
    center_.assign(centers[0].begin(), centers[0].end());
    side_ = CalibrateBoxSide(data_, 0.01, 8, rng);
  }

  Request KnnRequest(const std::string& tenant) const {
    Request r;
    r.tenant = tenant;
    r.query = Query::MakeKnn(center_, 5);
    r.metric = &metric_;
    return r;
  }

  Dataset data_;
  HybridTreeOptions opts_;
  std::unique_ptr<ShardedIndex> index_;
  L2Metric metric_;
  std::vector<float> center_;
  double side_ = 0.0;
};

TEST_F(ServerTest, ExecutesAllQueryTypes) {
  Server server(index_.get());
  Request box;
  box.tenant = "a";
  box.query = Query::MakeBox(MakeBoxQuery(center_, side_));
  QueryResult r = server.Execute(box);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();

  Request range;
  range.tenant = "a";
  range.query = Query::MakeRange(center_, 0.5);
  range.metric = &metric_;
  r = server.Execute(range);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();

  r = server.Execute(KnnRequest("a"));
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.neighbors.size(), 5u);
  EXPECT_EQ(r.neighbors, BruteForceKnn(data_, center_, 5, metric_));
}

TEST_F(ServerTest, RateOverloadCountsAsRejectedNotExpired) {
  Server server(index_.get());
  TenantQuota quota;
  quota.rate_qps = 1e-6;  // effectively never refills
  quota.burst = 1.0;
  server.SetQuota("limited", quota);

  EXPECT_TRUE(server.Execute(KnnRequest("limited")).status.ok());
  QueryResult second = server.Execute(KnnRequest("limited"));
  EXPECT_EQ(second.status.code(), StatusCode::kResourceExhausted);

  MetricsSnapshot snap = server.Snapshot();
  ASSERT_EQ(snap.tenants.size(), 1u);
  EXPECT_EQ(snap.tenants[0].tenant, "limited");
  EXPECT_EQ(snap.tenants[0].completed, 1u);
  EXPECT_EQ(snap.tenants[0].rejected, 1u);  // the distinguishable signal:
  EXPECT_EQ(snap.tenants[0].expired, 0u);   // rejected != expired
}

TEST_F(ServerTest, TinyDeadlineExpiresAndCounts) {
  ServerOptions options;
  options.default_deadline_seconds = 1e-12;
  Server server(index_.get(), options);
  QueryResult r = server.Execute(KnnRequest("t"));
  EXPECT_TRUE(r.status.IsDeadlineExceeded()) << r.status.ToString();
  MetricsSnapshot snap = server.Snapshot();
  ASSERT_EQ(snap.tenants.size(), 1u);
  EXPECT_EQ(snap.tenants[0].expired, 1u);
  EXPECT_EQ(snap.tenants[0].rejected, 0u);
}

TEST_F(ServerTest, QueueConsumedBudgetExpiresBeforeFanOut) {
  // The remaining-budget rule end to end: a deadline-bearing request
  // whose whole budget burns waiting for an in-flight slot must come back
  // DeadlineExceeded (counted as expired) without fanning out. The slot
  // is held by the controller's own RAII ticket — the wait path is the
  // same one Execute() takes.
  AdmissionController ctl;
  TenantQuota quota;
  quota.max_in_flight = 1;
  ctl.SetQuota("q", quota);
  auto held = ctl.Admit("q");
  ASSERT_TRUE(held.ok());
  auto starved = ctl.Admit("q", /*max_wait_seconds=*/0.06);
  ASSERT_FALSE(starved.ok());
  EXPECT_TRUE(starved.status().IsDeadlineExceeded());

  // Server-side accounting for the same shape: a budget consumed before
  // the scatter counts as expired, not rejected, and no I/O happens.
  Server server(index_.get());
  Request req = KnnRequest("q");
  req.deadline_seconds = 1e-12;
  QueryResult out = server.Execute(req);
  EXPECT_TRUE(out.status.IsDeadlineExceeded());
  MetricsSnapshot snap = server.Snapshot();
  ASSERT_EQ(snap.tenants.size(), 1u);
  EXPECT_EQ(snap.tenants[0].expired, 1u);
  EXPECT_EQ(snap.tenants[0].rejected, 0u);
}

TEST_F(ServerTest, CancelFlagCancelsAndCounts) {
  Server server(index_.get());
  server.Cancel();
  QueryResult r = server.Execute(KnnRequest("c"));
  EXPECT_TRUE(r.status.IsCancelled()) << r.status.ToString();
  server.ResetCancel();
  r = server.Execute(KnnRequest("c"));
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();

  MetricsSnapshot snap = server.Snapshot();
  ASSERT_EQ(snap.tenants.size(), 1u);
  EXPECT_EQ(snap.tenants[0].cancelled, 1u);
  EXPECT_EQ(snap.tenants[0].completed, 1u);
}

TEST_F(ServerTest, SnapshotCarriesPerShardIoAndLatencies) {
  Server server(index_.get());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.Execute(KnnRequest("io")).status.ok());
  }
  MetricsSnapshot snap = server.Snapshot();
  EXPECT_EQ(snap.per_shard_io.size(), index_->shards());
  EXPECT_GT(snap.total_io.logical_reads, 0u);  // serving I/O, not build I/O
  ASSERT_EQ(snap.tenants.size(), 1u);
  EXPECT_EQ(snap.tenants[0].completed, 10u);
  EXPECT_EQ(snap.tenants[0].latency.count, 10u);
  EXPECT_GT(snap.tenants[0].latency.p50, 0.0);
  EXPECT_GE(snap.tenants[0].latency.max, snap.tenants[0].latency.p50);
  EXPECT_GT(snap.window_seconds, 0.0);
  EXPECT_GT(snap.tenants[0].qps, 0.0);
  EXPECT_EQ(snap.TotalCompleted(), 10u);

  server.ResetMetrics();
  snap = server.Snapshot();
  EXPECT_EQ(snap.TotalCompleted(), 0u);
  EXPECT_EQ(snap.total_io.logical_reads, 0u);
  EXPECT_EQ(snap.tenants[0].latency.count, 0u);
}

TEST_F(ServerTest, MultiTenantTrafficIsIsolatedInMetrics) {
  ThreadPool pool(2);
  index_->set_pool(&pool);
  Server server(index_.get());
  TenantQuota quota;
  quota.rate_qps = 1e-6;
  quota.burst = 2.0;
  server.SetQuota("capped", quota);

  std::thread free_traffic([&] {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(server.Execute(KnnRequest("free")).status.ok());
    }
  });
  size_t capped_rejected = 0;
  for (int i = 0; i < 10; ++i) {
    QueryResult r = server.Execute(KnnRequest("capped"));
    if (r.status.code() == StatusCode::kResourceExhausted) ++capped_rejected;
  }
  free_traffic.join();
  index_->set_pool(nullptr);

  MetricsSnapshot snap = server.Snapshot();
  ASSERT_EQ(snap.tenants.size(), 2u);
  EXPECT_EQ(snap.tenants[0].tenant, "capped");  // sorted by name
  EXPECT_EQ(snap.tenants[1].tenant, "free");
  EXPECT_EQ(snap.tenants[0].completed + snap.tenants[0].rejected, 10u);
  EXPECT_EQ(capped_rejected, snap.tenants[0].rejected);
  EXPECT_GE(snap.tenants[0].rejected, 8u);  // burst 2, then turned away
  EXPECT_EQ(snap.tenants[1].completed, 20u);
  EXPECT_EQ(snap.tenants[1].rejected, 0u);
}

// Satellite 2: the snapshot exposes per-shard buffer-pool cache gauges
// and per-tenant I/O including the per-access-class cache counters.
TEST_F(ServerTest, SnapshotCarriesPerShardCacheAndTenantIo) {
  Server server(index_.get());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Execute(KnnRequest("t")).status.ok());
  }
  MetricsSnapshot snap = server.Snapshot();
  ASSERT_EQ(snap.per_shard_cache.size(), index_->shards());
  for (const BufferPool::CacheSnapshot& cache : snap.per_shard_cache) {
    // Default HybridTreeOptions serve with the segmented policy; the
    // shard trees are resident after build, so the gauges are live.
    EXPECT_EQ(cache.policy, CachePolicy::kSlru);
    EXPECT_GT(cache.cached_pages, 0u);
    EXPECT_EQ(cache.cached_pages, cache.probation_pages +
                                      cache.protected_pages +
                                      cache.prefetch_queue_pages);
  }
  // Scatter-task I/O folded into the tenant, classed as query traffic.
  ASSERT_EQ(snap.tenants.size(), 1u);
  const IoStats& io = snap.tenants[0].io;
  EXPECT_GT(io.logical_reads, 0u);
  const size_t q = static_cast<size_t>(AccessClass::kQuery);
  EXPECT_GT(io.class_hits[q] + io.class_misses[q], 0u);

  server.ResetMetrics();
  snap = server.Snapshot();
  EXPECT_EQ(snap.tenants[0].io.logical_reads, 0u);
  EXPECT_EQ(snap.tenants[0].io.class_hits[q], 0u);
}

// Satellite 2 + tentpole wiring: an attached CacheManager splits its
// budget across the shard pools at build time, caps them, and rebalances
// as the server observes traffic (Execute ticks MaybeRebalanceCache).
TEST(ServeCacheManagerTest, ManagerSplitsBudgetAcrossShardPools) {
  Rng rng(11);
  Dataset data = GenFourier(1200, 8, rng);
  HybridTreeOptions opts;
  opts.dim = 8;

  CacheManagerOptions mopts;
  mopts.total_budget_pages = 96;
  mopts.min_pool_pages = 8;
  mopts.rebalance_interval = 2;
  CacheManager mgr(mopts);  // must outlive the index (dtor unregisters)

  ShardedIndexOptions so;
  so.shards = 3;
  so.cache_manager = &mgr;
  auto index_r = ShardedIndex::Build(opts, so, data, nullptr);
  ASSERT_TRUE(index_r.ok()) << index_r.status().ToString();
  std::unique_ptr<ShardedIndex> index = std::move(index_r).ValueUnsafe();

  // Registration split the budget evenly across the three shard pools.
  EXPECT_EQ(mgr.pool_count(), 3u);
  for (size_t s = 0; s < index->shards(); ++s) {
    EXPECT_EQ(index->shard_cache(s).capacity_pages, 32u);
  }

  // Traffic through the server keeps the capacities within the budget
  // and above the floor as rebalances fire (interval 2, 12 requests).
  Server server(index.get());
  auto centers = MakeQueryCenters(data, 1, rng);
  L2Metric metric;
  Request req;
  req.tenant = "t";
  req.query = Query::MakeKnn(
      std::vector<float>(centers[0].begin(), centers[0].end()), 5);
  req.metric = &metric;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(server.Execute(req).status.ok());
  }
  size_t total = 0;
  for (const CacheManager::PoolReport& report : mgr.Report()) {
    EXPECT_GE(report.capacity_pages, mopts.min_pool_pages);
    total += report.capacity_pages;
  }
  EXPECT_LE(total, mopts.total_budget_pages);
  MetricsSnapshot snap = server.Snapshot();
  for (size_t s = 0; s < index->shards(); ++s) {
    EXPECT_LE(snap.per_shard_cache[s].cached_pages,
              snap.per_shard_cache[s].capacity_pages +
                  snap.per_shard_cache[s].pinned_pages);
  }
}

}  // namespace
}  // namespace ht
