// Tests for workload generation & selectivity calibration.

#include "data/workload.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace ht {
namespace {

TEST(WorkloadTest, BoxQueryClippedToCube) {
  const std::vector<float> center = {0.05f, 0.95f};
  Box q = MakeBoxQuery(center, 0.2);
  EXPECT_FLOAT_EQ(q.lo(0), 0.0f);
  EXPECT_FLOAT_EQ(q.hi(0), 0.15f);
  EXPECT_FLOAT_EQ(q.lo(1), 0.85f);
  EXPECT_FLOAT_EQ(q.hi(1), 1.0f);
}

TEST(WorkloadTest, CentersStayInCube) {
  Rng rng(67);
  Dataset d = GenUniform(500, 3, rng);
  auto centers = MakeQueryCenters(d, 100, rng, 0.1);
  EXPECT_EQ(centers.size(), 100u);
  for (const auto& c : centers) {
    for (float v : c) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(WorkloadTest, CalibratedBoxSideHitsTargetSelectivity) {
  Rng rng(71);
  Dataset d = GenUniform(20000, 4, rng);
  const double target = 0.01;
  const double side = CalibrateBoxSide(d, target, 30, rng);
  // Measure achieved mean selectivity with fresh queries.
  Rng rng2(72);
  auto centers = MakeQueryCenters(d, 50, rng2);
  double total = 0.0;
  for (const auto& c : centers) {
    total += static_cast<double>(BruteForceBox(d, MakeBoxQuery(c, side)).size());
  }
  const double achieved = total / (50.0 * static_cast<double>(d.size()));
  EXPECT_NEAR(achieved, target, target);  // within 2x
}

TEST(WorkloadTest, CalibratedRadiusHitsTargetSelectivity) {
  Rng rng(73);
  Dataset d = GenColhist(8000, 16, rng);
  L1Metric metric;
  const double target = 0.005;
  const double radius = CalibrateRangeRadius(d, metric, target, 30, rng);
  Rng rng2(74);
  auto centers = MakeQueryCenters(d, 40, rng2);
  double total = 0.0;
  for (const auto& c : centers) {
    total += static_cast<double>(BruteForceRange(d, c, radius, metric).size());
  }
  const double achieved = total / (40.0 * static_cast<double>(d.size()));
  EXPECT_NEAR(achieved, target, target);
}

TEST(WorkloadTest, BruteForceBoxMatchesManualCheck) {
  Dataset d(2, 4);
  const float rows[4][2] = {
      {0.1f, 0.1f}, {0.5f, 0.5f}, {0.55f, 0.45f}, {0.9f, 0.9f}};
  for (size_t i = 0; i < 4; ++i) {
    auto r = d.MutableRow(i);
    r[0] = rows[i][0];
    r[1] = rows[i][1];
  }
  Box q = Box::FromBounds({0.4f, 0.4f}, {0.6f, 0.6f});
  auto hits = BruteForceBox(d, q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 2u);
}

TEST(WorkloadTest, BruteForceKnnSortedAndCorrectSize) {
  Rng rng(79);
  Dataset d = GenUniform(500, 3, rng);
  const std::vector<float> q = {0.5f, 0.5f, 0.5f};
  L2Metric metric;
  auto knn = BruteForceKnn(d, q, 10, metric);
  ASSERT_EQ(knn.size(), 10u);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(knn[i - 1].first, knn[i].first);
  }
  // k > n clamps.
  EXPECT_EQ(BruteForceKnn(d, q, 9999, metric).size(), 500u);
}

TEST(WorkloadTest, BruteForceRangeMatchesKnnPrefix) {
  Rng rng(83);
  Dataset d = GenUniform(1000, 2, rng);
  const std::vector<float> q = {0.3f, 0.7f};
  L1Metric metric;
  auto knn = BruteForceKnn(d, q, 20, metric);
  const double radius = knn.back().first;
  auto range = BruteForceRange(d, q, radius, metric);
  // Every knn member must be in the range result.
  EXPECT_GE(range.size(), 20u);
}

}  // namespace
}  // namespace ht
