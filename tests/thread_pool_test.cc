// Unit tests for the exec ThreadPool: startup/shutdown, Status-based error
// propagation, and saturation (more tasks than workers).

#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ht {
namespace {

TEST(ThreadPoolTest, StartupAndShutdownAreClean) {
  for (size_t n : {1u, 2u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
    EXPECT_TRUE(pool.Shutdown().ok());
  }
  // Destructor-only shutdown (no explicit call).
  { ThreadPool pool(4); }
  // Zero requested threads clamps to one worker.
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count]() -> Status {
      count.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }).ok());
  }
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.Submit([&count]() -> Status {
        count.fetch_add(1);
        return Status::OK();
      }).ok());
    }
    EXPECT_TRUE(pool.Wait().ok());
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, FirstErrorPropagatesThroughWait) {
  ThreadPool pool(2);
  std::atomic<int> ran_after_error{0};
  ASSERT_TRUE(pool.Submit([]() -> Status {
    return Status::Internal("task exploded");
  }).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&ran_after_error]() -> Status {
      ran_after_error.fetch_add(1);
      return Status::OK();
    }).ok());
  }
  Status s = pool.Wait();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "task exploded");
  // Later tasks still ran (errors don't poison the pool)...
  EXPECT_EQ(ran_after_error.load(), 20);
  // ...and Wait() cleared the sticky error.
  EXPECT_TRUE(pool.Wait().ok());
}

TEST(ThreadPoolTest, ErrorPropagatesThroughShutdown) {
  ThreadPool pool(2);
  ASSERT_TRUE(
      pool.Submit([]() -> Status { return Status::IOError("disk gone"); })
          .ok());
  Status s = pool.Shutdown();
  EXPECT_TRUE(s.IsIOError());
}

TEST(ThreadPoolTest, SubmitAfterShutdownRejected) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.Shutdown().ok());
  Status s = pool.Submit([]() -> Status { return Status::OK(); });
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(ThreadPoolTest, SaturationDrainsCompletely) {
  // Far more tasks than workers: every task must still run exactly once,
  // and graceful shutdown must drain the backlog.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  constexpr int kTasks = 500;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.Submit([&count]() -> Status {
      count.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
      return Status::OK();
    }).ok());
  }
  EXPECT_TRUE(pool.Shutdown().ok());
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // Two tasks that each wait for the other to start can only finish if the
  // pool really runs them in parallel (bounded by a timeout so a broken
  // pool fails instead of hanging).
  ThreadPool pool(2);
  std::atomic<int> started{0};
  std::atomic<bool> both_seen{false};
  auto task = [&]() -> Status {
    started.fetch_add(1);
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() > give_up) {
        return Status::Internal("peer task never started");
      }
      std::this_thread::yield();
    }
    both_seen.store(true);
    return Status::OK();
  };
  ASSERT_TRUE(pool.Submit(task).ok());
  ASSERT_TRUE(pool.Submit(task).ok());
  EXPECT_TRUE(pool.Wait().ok());
  EXPECT_TRUE(both_seen.load());
}

}  // namespace
}  // namespace ht
