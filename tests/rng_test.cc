// Unit tests for the deterministic RNG.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace ht {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, GaussianMomentsSane) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 2.5, 7.0}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.1 * shape + 0.03) << "shape=" << shape;
  }
}

TEST(RngTest, NextBelowStaysBelow) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(ZipfSamplerTest, SkewsTowardSmallIndices) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
  // Rank-0 frequency for Zipf(1.0, n=100) is 1/H_100 ~= 0.1928.
  EXPECT_NEAR(counts[0] / 100000.0, 0.1928, 0.02);
}

}  // namespace
}  // namespace ht
