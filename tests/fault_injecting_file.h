// Copyright 2026 The HybridTree Authors.
// Test-only PagedFile decorators for crash-consistency tests:
//
//  * WriteRecordingPagedFile logs the order of page writes and Sync calls,
//    so tests can assert durability ordering (e.g. "the metadata page is
//    written after every tree page and before the final sync").
//  * FaultInjectingPagedFile fails all writes after a budget of per-page
//    writes is exhausted, simulating a crash part-way through a flush. A
//    failing call writes nothing (the failure is atomic at call
//    granularity; DiskPagedFile's own short-transfer loop is exercised by
//    the paged_file tests, not here).

#pragma once

#include <atomic>
#include <limits>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "storage/paged_file.h"

namespace ht {

/// One recorded durability event: a page write or a sync barrier.
struct WriteEvent {
  static constexpr PageId kSync = kInvalidPageId;
  PageId page = kInvalidPageId;  // kSync for a Sync() call
  bool IsSync() const { return page == kSync; }
};

class WriteRecordingPagedFile final : public PagedFile {
 public:
  explicit WriteRecordingPagedFile(PagedFile* base) : base_(base) {}

  std::vector<WriteEvent> TakeEvents() {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<WriteEvent> out = std::move(events_);
    events_.clear();
    return out;
  }

  size_t page_size() const override { return base_->page_size(); }
  PageId page_count() const override { return base_->page_count(); }
  Status Read(PageId id, Page* out) override { return base_->Read(id, out); }
  Status ReadBatch(std::span<const PageId> ids,
                   std::span<Page* const> outs) override {
    return base_->ReadBatch(ids, outs);
  }

  Status Write(PageId id, const Page& page) override {
    HT_RETURN_NOT_OK(base_->Write(id, page));
    Record(id);
    return Status::OK();
  }

  Status WriteBatch(std::span<const PageId> ids,
                    std::span<const Page* const> pages) override {
    HT_RETURN_NOT_OK(base_->WriteBatch(ids, pages));
    for (PageId id : ids) Record(id);
    return Status::OK();
  }

  Status Sync() override {
    HT_RETURN_NOT_OK(base_->Sync());
    Record(WriteEvent::kSync);
    return Status::OK();
  }

  Result<PageId> Allocate() override { return base_->Allocate(); }
  Status Free(PageId id) override { return base_->Free(id); }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  void Record(PageId id) {
    std::lock_guard<std::mutex> g(mu_);
    events_.push_back(WriteEvent{id});
  }

  PagedFile* base_;
  std::mutex mu_;
  std::vector<WriteEvent> events_;
};

class FaultInjectingPagedFile final : public PagedFile {
 public:
  explicit FaultInjectingPagedFile(PagedFile* base) : base_(base) {}

  /// The next `pages` per-page writes succeed; everything after fails with
  /// IOError until the budget is reset. A WriteBatch larger than the
  /// remaining budget fails whole (nothing lands).
  void SetWriteBudget(uint64_t pages) {
    budget_.store(pages, std::memory_order_relaxed);
  }
  void DisableFaults() {
    budget_.store(std::numeric_limits<uint64_t>::max(),
                  std::memory_order_relaxed);
  }
  uint64_t failed_writes() const {
    return failed_.load(std::memory_order_relaxed);
  }

  size_t page_size() const override { return base_->page_size(); }
  PageId page_count() const override { return base_->page_count(); }
  Status Read(PageId id, Page* out) override { return base_->Read(id, out); }
  Status ReadBatch(std::span<const PageId> ids,
                   std::span<Page* const> outs) override {
    return base_->ReadBatch(ids, outs);
  }

  Status Write(PageId id, const Page& page) override {
    HT_RETURN_NOT_OK(Consume(1));
    return base_->Write(id, page);
  }

  Status WriteBatch(std::span<const PageId> ids,
                    std::span<const Page* const> pages) override {
    HT_RETURN_NOT_OK(Consume(ids.size()));
    return base_->WriteBatch(ids, pages);
  }

  Status Sync() override { return base_->Sync(); }
  Result<PageId> Allocate() override { return base_->Allocate(); }
  Status Free(PageId id) override { return base_->Free(id); }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  Status Consume(uint64_t pages) {
    uint64_t have = budget_.load(std::memory_order_relaxed);
    if (have == std::numeric_limits<uint64_t>::max()) return Status::OK();
    if (pages > have) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("injected write fault");
    }
    budget_.store(have - pages, std::memory_order_relaxed);
    return Status::OK();
  }

  PagedFile* base_;
  std::atomic<uint64_t> budget_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> failed_{0};
};

}  // namespace ht
