// Tests for the X-tree baseline: exact query answers, chain (supernode)
// mechanics, and the signature high-dimensional supernode growth.

#include "baselines/x_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

TEST(XTreeTest, MatchesBruteForceBoxSearch) {
  Rng rng(2301);
  Dataset data = GenUniform(3000, 4, rng);
  MemPagedFile file(512);
  auto tree = XTree::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok()) << i;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int q = 0; q < 30; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.3);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query)) << q;
  }
}

TEST(XTreeTest, RangeAndKnnMatchBruteForce) {
  Rng rng(2303);
  Dataset data = GenClustered(2000, 3, 5, 0.06, rng);
  MemPagedFile file(512);
  auto tree = XTree::Create(3, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  L1Metric l1;
  L2Metric l2;
  for (int q = 0; q < 10; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    auto got = tree->SearchRange(centers[0], 0.3, l1).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceRange(data, centers[0], 0.3, l1));
    auto got_k = tree->SearchKnn(centers[0], 10, l2).ValueOrDie();
    auto want_k = BruteForceKnn(data, centers[0], 10, l2);
    ASSERT_EQ(got_k.size(), want_k.size());
    for (size_t i = 0; i < got_k.size(); ++i) {
      ASSERT_NEAR(got_k[i].first, want_k[i].first, 1e-9);
    }
  }
}

TEST(XTreeTest, SupernodesEmergeOnInseparableData) {
  // Supernodes form exactly when no acceptable (low-overlap) split exists.
  // Heavy duplication makes regions genuinely inseparable: the node grows
  // a page chain instead of splitting — the X-tree's defining behaviour.
  Rng rng(2307);
  MemPagedFile file(512);
  auto tree = XTree::Create(8, &file).ValueOrDie();
  Dataset data(8, 2000);
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.MutableRow(i);
    // Four heavy duplicate sites: within a site no split can separate
    // anything, so those leaves must grow chains.
    const float base = (i % 4) * 0.25f + 0.1f;
    for (uint32_t d = 0; d < 8; ++d) row[d] = base;
  }
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok()) << i;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  XTreeStats stats = tree->ComputeStats().ValueOrDie();
  EXPECT_GT(stats.supernodes, 0u);
  EXPECT_GT(stats.max_chain_pages, 1u);
  // Queries remain exact through supernodes.
  for (int q = 0; q < 10; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.2);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query)) << q;
  }
}

TEST(XTreeTest, SupernodeReadsCostChainLength) {
  Rng rng(2311);
  MemPagedFile file(2048);
  auto tree = XTree::Create(32, &file).ValueOrDie();
  Dataset data = GenColhist(6000, 32, rng);
  data.NormalizeUnitCube();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  XTreeStats stats = tree->ComputeStats().ValueOrDie();
  tree->pool().ResetStats();
  (void)tree->SearchBox(Box::UnitCube(32)).ValueOrDie();
  // A full sweep reads every chained page, not just one per node.
  EXPECT_EQ(tree->pool().stats().logical_reads, stats.total_pages);
}

TEST(XTreeTest, DeleteRemovesEntries) {
  Rng rng(2313);
  Dataset data = GenUniform(1000, 2, rng);
  MemPagedFile file(512);
  auto tree = XTree::Create(2, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  for (size_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(tree->Delete(data.Row(i), i).ok()) << i;
  }
  EXPECT_EQ(tree->size(), 600u);
  EXPECT_TRUE(tree->Delete(data.Row(0), 0).IsNotFound());
  auto got = tree->SearchBox(Box::UnitCube(2)).ValueOrDie();
  EXPECT_EQ(got.size(), 600u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(XTreeTest, DuplicatePointsSupported) {
  MemPagedFile file(512);
  auto tree = XTree::Create(2, &file).ValueOrDie();
  const std::vector<float> p = {0.5f, 0.5f};
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree->Insert(p, i).ok()) << i;
  }
  auto hits =
      tree->SearchBox(Box::FromBounds({0.5f, 0.5f}, {0.5f, 0.5f}))
          .ValueOrDie();
  EXPECT_EQ(hits.size(), 200u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

}  // namespace
}  // namespace ht
