// Tests for the evaluation harness (cost measurement + normalization).

#include "eval/harness.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "baselines/seqscan.h"
#include "data/generators.h"
#include "data/workload.h"
#include "eval/hybrid_adapter.h"

namespace ht {
namespace {

TEST(HarnessTest, BuildsEveryKind) {
  Rng rng(1501);
  Dataset data = GenUniform(500, 4, rng);
  BuildConfig config;
  config.page_size = 1024;
  for (IndexKind kind :
       {IndexKind::kHybrid, IndexKind::kHybridVam, IndexKind::kHybridNoEls,
        IndexKind::kSrTree, IndexKind::kHbTree, IndexKind::kKdbTree,
        IndexKind::kRStarTree, IndexKind::kSeqScan}) {
    auto b = BuildIndex(kind, data, config);
    ASSERT_TRUE(b.ok()) << IndexKindName(kind);
    EXPECT_EQ(b.ValueOrDie().index->size(), 500u);
    EXPECT_GT(b.ValueOrDie().build_seconds, 0.0);
    EXPECT_FALSE(IndexKindName(kind).empty());
  }
}

TEST(HarnessTest, WorkloadCostsAreAveraged) {
  Rng rng(1502);
  Dataset data = GenUniform(2000, 3, rng);
  BuildConfig config;
  config.page_size = 512;
  auto b = BuildIndex(IndexKind::kSeqScan, data, config).ValueOrDie();
  std::vector<Box> queries(5, Box::UnitCube(3));
  QueryCosts costs = RunBoxWorkload(b.index.get(), queries).ValueOrDie();
  EXPECT_EQ(costs.queries, 5u);
  EXPECT_DOUBLE_EQ(costs.avg_results, 2000.0);
  // The scan reads all pages for every query.
  auto* scan = dynamic_cast<SeqScan*>(b.index.get());
  ASSERT_NE(scan, nullptr);
  EXPECT_DOUBLE_EQ(costs.avg_accesses, static_cast<double>(scan->data_pages()));
}

TEST(HarnessTest, NormalizationMatchesPaperConventions) {
  QueryCosts scan;
  scan.avg_accesses = 1000;
  scan.avg_cpu_seconds = 0.02;
  // The scan itself: sequential I/O costs 1/10 per page -> 0.1; CPU 1.0.
  NormalizedCosts n1 = Normalize(scan, /*sequential_io=*/true, 1000, scan);
  EXPECT_DOUBLE_EQ(n1.io, 0.1);
  EXPECT_DOUBLE_EQ(n1.cpu, 1.0);
  // An index that reads 50 random pages: 50/1000 = 0.05; CPU ratio 0.25.
  QueryCosts index;
  index.avg_accesses = 50;
  index.avg_cpu_seconds = 0.005;
  NormalizedCosts n2 = Normalize(index, /*sequential_io=*/false, 1000, scan);
  EXPECT_DOUBLE_EQ(n2.io, 0.05);
  EXPECT_DOUBLE_EQ(n2.cpu, 0.25);
}

TEST(HarnessTest, RangeAndKnnWorkloads) {
  Rng rng(1503);
  Dataset data = GenClustered(1500, 4, 4, 0.08, rng);
  BuildConfig config;
  config.page_size = 1024;
  auto b = BuildIndex(IndexKind::kHybrid, data, config).ValueOrDie();
  auto centers = MakeQueryCenters(data, 8, rng);
  L1Metric l1;
  QueryCosts range = RunRangeWorkload(b.index.get(), centers, 0.3, l1)
                         .ValueOrDie();
  EXPECT_EQ(range.queries, 8u);
  EXPECT_GT(range.avg_accesses, 0.0);
  QueryCosts knn =
      RunKnnWorkload(b.index.get(), centers, 5, l1).ValueOrDie();
  EXPECT_DOUBLE_EQ(knn.avg_results, 5.0);
}

TEST(HarnessTest, EnvSizeParsesAndFallsBack) {
  ::unsetenv("HT_TEST_ENVSIZE");
  EXPECT_EQ(EnvSize("HT_TEST_ENVSIZE", 123), 123u);
  ::setenv("HT_TEST_ENVSIZE", "4567", 1);
  EXPECT_EQ(EnvSize("HT_TEST_ENVSIZE", 123), 4567u);
  ::setenv("HT_TEST_ENVSIZE", "not-a-number", 1);
  EXPECT_EQ(EnvSize("HT_TEST_ENVSIZE", 123), 123u);
  ::setenv("HT_TEST_ENVSIZE", "", 1);
  EXPECT_EQ(EnvSize("HT_TEST_ENVSIZE", 123), 123u);
  ::unsetenv("HT_TEST_ENVSIZE");
}

TEST(HarnessTest, TablePrinterNumFormatting) {
  EXPECT_EQ(TablePrinter::Num(0.12345, 2), "0.12");
  EXPECT_EQ(TablePrinter::Num(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::Num(1234.5678, 1), "1234.6");
}

TEST(HarnessTest, HybridAdapterExposesTree) {
  Rng rng(1504);
  Dataset data = GenUniform(300, 2, rng);
  BuildConfig config;
  config.page_size = 512;
  auto b = BuildIndex(IndexKind::kHybrid, data, config).ValueOrDie();
  auto* adapter = dynamic_cast<HybridIndexAdapter*>(b.index.get());
  ASSERT_NE(adapter, nullptr);
  EXPECT_TRUE(adapter->tree().CheckInvariants().ok());
  EXPECT_EQ(adapter->Name(), "HybridTree");
  // Delete passthrough.
  EXPECT_TRUE(adapter->Delete(data.Row(0), 0).ok());
  EXPECT_EQ(adapter->size(), 299u);
}

}  // namespace
}  // namespace ht
