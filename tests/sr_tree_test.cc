// Tests for the SR-tree baseline.

#include "baselines/sr_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

TEST(SrTreeTest, IndexEntriesLargerThanRtree) {
  // SR entries store rect + sphere: 12*dim + 12 bytes, so fanout is worse
  // than even the R-tree's — the SR-tree paper's own trade-off.
  MemPagedFile file(4096);
  auto tree = SrTree::Create(64, &file).ValueOrDie();
  EXPECT_LT(tree->index_capacity(), (4096u - 4) / (8 * 64 + 4));
  EXPECT_GE(tree->index_capacity(), 4u);
}

TEST(SrTreeTest, MatchesBruteForceBoxSearch) {
  Rng rng(491);
  Dataset data = GenUniform(3000, 4, rng);
  MemPagedFile file(512);
  auto tree = SrTree::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok()) << i;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int q = 0; q < 30; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.3);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query)) << q;
  }
}

TEST(SrTreeTest, RangeAndKnnMatchBruteForceAllMetrics) {
  Rng rng(499);
  Dataset data = GenClustered(2000, 3, 5, 0.06, rng);
  MemPagedFile file(512);
  auto tree = SrTree::Create(3, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  const L1Metric l1;
  const L2Metric l2;
  const LInfMetric linf;
  for (const DistanceMetric* m :
       std::initializer_list<const DistanceMetric*>{&l1, &l2, &linf}) {
    for (int q = 0; q < 8; ++q) {
      auto centers = MakeQueryCenters(data, 1, rng);
      auto got = tree->SearchRange(centers[0], 0.3, *m).ValueOrDie();
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, BruteForceRange(data, centers[0], 0.3, *m)) << m->Name();
      auto got_k = tree->SearchKnn(centers[0], 10, *m).ValueOrDie();
      auto want_k = BruteForceKnn(data, centers[0], 10, *m);
      ASSERT_EQ(got_k.size(), want_k.size());
      for (size_t i = 0; i < got_k.size(); ++i) {
        ASSERT_NEAR(got_k[i].first, want_k[i].first, 1e-9) << m->Name();
      }
    }
  }
}

TEST(SrTreeTest, SphereTightensL2Search) {
  // With the sphere component disabled the SR-tree degrades to an R-tree;
  // the combined region must never read MORE pages for L2 range queries
  // than the rectangle alone (we verify against rect-only pruning by
  // comparing to the brute-force answer and counting accesses).
  Rng rng(503);
  Dataset data = GenClustered(3000, 8, 6, 0.05, rng);
  MemPagedFile file(1024);
  auto tree = SrTree::Create(8, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  L2Metric l2;
  auto centers = MakeQueryCenters(data, 20, rng);
  for (const auto& c : centers) {
    auto got = tree->SearchRange(c, 0.2, l2).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceRange(data, c, 0.2, l2));
  }
}

TEST(SrTreeTest, DeleteStaysCorrect) {
  Rng rng(509);
  Dataset data = GenUniform(1000, 3, rng);
  MemPagedFile file(512);
  auto tree = SrTree::Create(3, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  std::set<uint64_t> deleted;
  for (size_t i = 0; i < data.size(); i += 3) {
    ASSERT_TRUE(tree->Delete(data.Row(i), i).ok()) << i;
    deleted.insert(i);
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  Box q = MakeBoxQuery(data.Row(1), 0.35);
  std::vector<uint64_t> expect;
  for (uint64_t id : BruteForceBox(data, q)) {
    if (!deleted.count(id)) expect.push_back(id);
  }
  auto got = tree->SearchBox(q).ValueOrDie();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

TEST(SrTreeTest, StatsSane) {
  Rng rng(521);
  Dataset data = GenUniform(2000, 4, rng);
  MemPagedFile file(512);
  auto tree = SrTree::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  SrStats stats = tree->ComputeStats().ValueOrDie();
  EXPECT_GT(stats.data_nodes, 0u);
  EXPECT_GT(stats.index_nodes, 0u);
  EXPECT_GT(stats.avg_leaf_utilization, 0.3);
  EXPECT_GT(stats.avg_index_fanout, 1.5);
}

}  // namespace
}  // namespace ht
