// Tests for the sequential-scan baseline.

#include "baselines/seqscan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

TEST(SeqScanTest, MatchesBruteForceEverything) {
  Rng rng(401);
  Dataset data = GenUniform(1500, 4, rng);
  MemPagedFile file(512);
  auto scan = SeqScan::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(scan->Insert(data.Row(i), i).ok());
  }
  EXPECT_EQ(scan->size(), data.size());
  EXPECT_TRUE(scan->sequential_io());

  Box q = MakeBoxQuery(data.Row(7), 0.3);
  auto got = scan->SearchBox(q).ValueOrDie();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForceBox(data, q));

  L1Metric l1;
  auto got_r = scan->SearchRange(data.Row(3), 0.5, l1).ValueOrDie();
  std::sort(got_r.begin(), got_r.end());
  EXPECT_EQ(got_r, BruteForceRange(data, data.Row(3), 0.5, l1));

  L2Metric l2;
  auto got_k = scan->SearchKnn(data.Row(9), 12, l2).ValueOrDie();
  auto want_k = BruteForceKnn(data, data.Row(9), 12, l2);
  ASSERT_EQ(got_k.size(), want_k.size());
  for (size_t i = 0; i < got_k.size(); ++i) {
    EXPECT_NEAR(got_k[i].first, want_k[i].first, 1e-12);
  }
}

TEST(SeqScanTest, EveryQueryReadsEveryPage) {
  Rng rng(409);
  Dataset data = GenUniform(1000, 2, rng);
  MemPagedFile file(256);
  auto scan = SeqScan::Create(2, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(scan->Insert(data.Row(i), i).ok());
  }
  const uint64_t pages = scan->data_pages();
  EXPECT_EQ(pages, (data.size() + DataNode::Capacity(2, 256) - 1) /
                       DataNode::Capacity(2, 256));
  scan->pool().ResetStats();
  (void)scan->SearchBox(Box::UnitCube(2)).ValueOrDie();
  EXPECT_EQ(scan->pool().stats().logical_reads, pages);
}

TEST(SeqScanTest, DeleteCompactsPages) {
  Rng rng(419);
  Dataset data = GenUniform(300, 2, rng);
  MemPagedFile file(256);
  auto scan = SeqScan::Create(2, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(scan->Insert(data.Row(i), i).ok());
  }
  const uint64_t pages_before = scan->data_pages();
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(scan->Delete(data.Row(i), i).ok()) << i;
  }
  EXPECT_EQ(scan->size(), 100u);
  EXPECT_LT(scan->data_pages(), pages_before);
  // The survivors are still all findable.
  auto got = scan->SearchBox(Box::UnitCube(2)).ValueOrDie();
  EXPECT_EQ(got.size(), 100u);
  for (uint64_t id : got) EXPECT_GE(id, 200u);
  EXPECT_TRUE(scan->Delete(data.Row(0), 0).IsNotFound());
}

TEST(SeqScanTest, CreateValidation) {
  MemPagedFile file(256);
  (void)file.Allocate().ValueOrDie();
  EXPECT_FALSE(SeqScan::Create(2, &file).ok());  // non-empty file
}

}  // namespace
}  // namespace ht
