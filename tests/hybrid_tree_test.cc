// Integration tests for the hybrid tree: end-to-end correctness of insert,
// box / range / k-NN search, and delete, checked against brute force.

#include "core/hybrid_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

struct TreeFixture {
  std::unique_ptr<MemPagedFile> file;
  std::unique_ptr<HybridTree> tree;

  explicit TreeFixture(HybridTreeOptions opts) {
    file = std::make_unique<MemPagedFile>(opts.page_size);
    tree = HybridTree::Create(opts, file.get()).ValueOrDie();
  }
};

HybridTreeOptions SmallOpts(uint32_t dim, size_t page_size = 512) {
  HybridTreeOptions o;
  o.dim = dim;
  o.page_size = page_size;
  return o;
}

void LoadDataset(HybridTree* tree, const Dataset& data) {
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(tree->Insert(data.Row(i), i));
  }
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(HybridTreeTest, CreateValidation) {
  MemPagedFile file(512);
  HybridTreeOptions o;
  o.dim = 0;
  o.page_size = 512;
  EXPECT_FALSE(HybridTree::Create(o, &file).ok());
  o.dim = 1000;  // entry would not fit 4 entries in 512B
  EXPECT_FALSE(HybridTree::Create(o, &file).ok());
  o.dim = 2;
  o.page_size = 4096;  // mismatch with file page size
  EXPECT_FALSE(HybridTree::Create(o, &file).ok());
}

TEST(HybridTreeTest, EmptyTreeSearches) {
  TreeFixture f(SmallOpts(2));
  EXPECT_EQ(f.tree->size(), 0u);
  EXPECT_TRUE(f.tree->SearchBox(Box::UnitCube(2)).ValueOrDie().empty());
  EXPECT_TRUE(
      f.tree->SearchKnn(std::vector<float>{0.5f, 0.5f}, 3, L2Metric())
          .ValueOrDie()
          .empty());
  EXPECT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(HybridTreeTest, InsertValidation) {
  TreeFixture f(SmallOpts(2));
  EXPECT_TRUE(
      f.tree->Insert(std::vector<float>{0.5f}, 0).IsInvalidArgument());
  EXPECT_TRUE(f.tree->Insert(std::vector<float>{0.5f, 1.5f}, 0)
                  .IsInvalidArgument());
  EXPECT_TRUE(f.tree->Insert(std::vector<float>{-0.1f, 0.5f}, 0)
                  .IsInvalidArgument());
  EXPECT_EQ(f.tree->size(), 0u);
}

TEST(HybridTreeTest, SingleNodeLifecycle) {
  TreeFixture f(SmallOpts(2));
  HT_CHECK_OK(f.tree->Insert(std::vector<float>{0.25f, 0.75f}, 42));
  EXPECT_EQ(f.tree->size(), 1u);
  EXPECT_EQ(f.tree->height(), 0u);
  auto hits =
      f.tree->SearchBox(Box::FromBounds({0.2f, 0.7f}, {0.3f, 0.8f}))
          .ValueOrDie();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(HybridTreeTest, GrowsAndMatchesBruteForceBoxSearch) {
  Rng rng(201);
  Dataset data = GenUniform(3000, 4, rng);
  TreeFixture f(SmallOpts(4, 512));  // tiny pages -> deep tree
  LoadDataset(f.tree.get(), data);
  EXPECT_EQ(f.tree->size(), 3000u);
  EXPECT_GE(f.tree->height(), 2u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());

  for (int q = 0; q < 50; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.3);
    auto expect = BruteForceBox(data, query);
    auto got = Sorted(f.tree->SearchBox(query).ValueOrDie());
    ASSERT_EQ(got, expect) << "query " << q << ": " << query.ToString();
  }
}

TEST(HybridTreeTest, RangeSearchMatchesBruteForceAllMetrics) {
  Rng rng(211);
  Dataset data = GenClustered(2000, 3, 4, 0.1, rng);
  TreeFixture f(SmallOpts(3, 512));
  LoadDataset(f.tree.get(), data);

  const L1Metric l1;
  const L2Metric l2;
  const LInfMetric linf;
  const WeightedL2Metric wl2({2.0, 0.5, 1.0});
  const DistanceMetric* metrics[] = {&l1, &l2, &linf, &wl2};
  for (const DistanceMetric* m : metrics) {
    for (int q = 0; q < 10; ++q) {
      auto centers = MakeQueryCenters(data, 1, rng);
      const double radius = 0.05 + 0.2 * rng.NextDouble();
      auto expect = BruteForceRange(data, centers[0], radius, *m);
      auto got =
          Sorted(f.tree->SearchRange(centers[0], radius, *m).ValueOrDie());
      ASSERT_EQ(got, expect) << m->Name() << " radius=" << radius;
    }
  }
}

TEST(HybridTreeTest, KnnMatchesBruteForceDistances) {
  Rng rng(223);
  Dataset data = GenUniform(2500, 3, rng);
  TreeFixture f(SmallOpts(3, 512));
  LoadDataset(f.tree.get(), data);

  const L2Metric l2;
  const L1Metric l1;
  for (const DistanceMetric* m :
       std::initializer_list<const DistanceMetric*>{&l1, &l2}) {
    for (int q = 0; q < 20; ++q) {
      auto centers = MakeQueryCenters(data, 1, rng);
      const size_t k = 1 + rng.NextBelow(30);
      auto expect = BruteForceKnn(data, centers[0], k, *m);
      auto got = f.tree->SearchKnn(centers[0], k, *m).ValueOrDie();
      ASSERT_EQ(got.size(), expect.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].first, expect[i].first, 1e-9)
            << m->Name() << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(HybridTreeTest, KnnKLargerThanDataset) {
  Rng rng(227);
  Dataset data = GenUniform(50, 2, rng);
  TreeFixture f(SmallOpts(2));
  LoadDataset(f.tree.get(), data);
  auto got = f.tree->SearchKnn(std::vector<float>{0.1f, 0.1f}, 500, L2Metric())
                 .ValueOrDie();
  EXPECT_EQ(got.size(), 50u);
}

TEST(HybridTreeTest, DuplicatePointsSupported) {
  TreeFixture f(SmallOpts(2, 512));
  const std::vector<float> p = {0.5f, 0.5f};
  // Far more duplicates than one data node holds: exercises the degenerate
  // split path.
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(f.tree->Insert(p, i).ok()) << i;
  }
  EXPECT_EQ(f.tree->size(), 300u);
  auto hits = f.tree->SearchBox(Box::FromBounds({0.5f, 0.5f}, {0.5f, 0.5f}))
                  .ValueOrDie();
  EXPECT_EQ(hits.size(), 300u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(HybridTreeTest, DeleteRemovesExactlyOneEntry) {
  Rng rng(229);
  Dataset data = GenUniform(800, 2, rng);
  TreeFixture f(SmallOpts(2, 512));
  LoadDataset(f.tree.get(), data);

  // Delete every third point and re-verify queries against brute force on
  // the remaining set.
  std::set<uint64_t> deleted;
  for (size_t i = 0; i < data.size(); i += 3) {
    ASSERT_TRUE(f.tree->Delete(data.Row(i), i).ok()) << i;
    deleted.insert(i);
  }
  EXPECT_EQ(f.tree->size(), data.size() - deleted.size());
  ASSERT_TRUE(f.tree->CheckInvariants().ok());

  for (int q = 0; q < 20; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.25);
    std::vector<uint64_t> expect;
    for (uint64_t id : BruteForceBox(data, query)) {
      if (!deleted.count(id)) expect.push_back(id);
    }
    auto got = Sorted(f.tree->SearchBox(query).ValueOrDie());
    ASSERT_EQ(got, expect);
  }
}

TEST(HybridTreeTest, DeleteMissingIsNotFound) {
  TreeFixture f(SmallOpts(2));
  HT_CHECK_OK(f.tree->Insert(std::vector<float>{0.5f, 0.5f}, 7));
  EXPECT_TRUE(
      f.tree->Delete(std::vector<float>{0.5f, 0.5f}, 8).IsNotFound());
  EXPECT_TRUE(
      f.tree->Delete(std::vector<float>{0.4f, 0.5f}, 7).IsNotFound());
  EXPECT_EQ(f.tree->size(), 1u);
}

TEST(HybridTreeTest, DeleteEverythingThenReuse) {
  Rng rng(233);
  Dataset data = GenUniform(600, 2, rng);
  TreeFixture f(SmallOpts(2, 512));
  LoadDataset(f.tree.get(), data);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(f.tree->Delete(data.Row(i), i).ok()) << i;
  }
  EXPECT_EQ(f.tree->size(), 0u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
  EXPECT_TRUE(f.tree->SearchBox(Box::UnitCube(2)).ValueOrDie().empty());
  // The tree is still usable afterwards.
  LoadDataset(f.tree.get(), data);
  EXPECT_EQ(f.tree->size(), 600u);
  ASSERT_TRUE(f.tree->CheckInvariants().ok());
}

TEST(HybridTreeTest, MixedInsertDeleteSearchWorkload) {
  Rng rng(239);
  Dataset data = GenUniform(2000, 3, rng);
  TreeFixture f(SmallOpts(3, 512));
  std::set<uint64_t> present;
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(f.tree->Insert(data.Row(i), i));
    present.insert(i);
    if (i % 7 == 6) {
      // Delete a random present id.
      auto it = present.begin();
      std::advance(it, rng.NextBelow(present.size()));
      ASSERT_TRUE(f.tree->Delete(data.Row(*it), *it).ok());
      present.erase(it);
    }
    if (i % 400 == 399) {
      ASSERT_TRUE(f.tree->CheckInvariants().ok()) << "at step " << i;
      Box query = MakeBoxQuery(data.Row(rng.NextBelow(i)), 0.3);
      std::vector<uint64_t> expect;
      for (uint64_t id : BruteForceBox(data, query)) {
        if (present.count(id)) expect.push_back(id);
      }
      auto got = Sorted(f.tree->SearchBox(query).ValueOrDie());
      ASSERT_EQ(got, expect) << "at step " << i;
    }
  }
}

TEST(HybridTreeTest, AccessCountingViaPool) {
  Rng rng(241);
  Dataset data = GenUniform(2000, 4, rng);
  TreeFixture f(SmallOpts(4, 512));
  LoadDataset(f.tree.get(), data);
  f.tree->pool().ResetStats();
  Box query = MakeBoxQuery(data.Row(0), 0.1);
  (void)f.tree->SearchBox(query).ValueOrDie();
  const IoStats st = f.tree->pool().stats();  // copy: ComputeStats also reads
  EXPECT_GT(st.logical_reads, 0u);
  // A selective query must touch far fewer pages than the whole tree.
  auto stats = f.tree->ComputeStats().ValueOrDie();
  EXPECT_LT(st.logical_reads, stats.data_nodes + stats.index_nodes);
}

TEST(HybridTreeTest, StatsReflectStructure) {
  Rng rng(251);
  Dataset data = GenUniform(3000, 4, rng);
  TreeFixture f(SmallOpts(4, 512));
  LoadDataset(f.tree.get(), data);
  TreeStats s = f.tree->ComputeStats().ValueOrDie();
  EXPECT_EQ(s.entry_count, 3000u);
  EXPECT_GT(s.data_nodes, 0u);
  EXPECT_GT(s.index_nodes, 0u);
  // Utilization guarantee: every non-root data node holds at least the
  // configured floor of entries (floor(util * capacity)).
  const double cap = static_cast<double>(f.tree->data_node_capacity());
  const double floor_entries =
      std::floor(f.tree->options().data_node_min_util * cap);
  EXPECT_GE(s.min_data_utilization * cap + 1e-6, floor_entries);
  EXPECT_GT(s.avg_index_fanout, 1.9);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(HybridTreeTest, ElsSidecarTracksBytes) {
  Rng rng(257);
  Dataset data = GenUniform(2000, 4, rng);
  HybridTreeOptions o = SmallOpts(4, 512);
  o.els_mode = ElsMode::kInMemory;
  o.els_bits = 4;
  TreeFixture f(o);
  LoadDataset(f.tree.get(), data);
  TreeStats s = f.tree->ComputeStats().ValueOrDie();
  EXPECT_GT(s.els_sidecar_bytes, 0u);
  // Paper: tiny relative to the data (~1% at 64-d/8K pages; generously
  // bounded here).
  EXPECT_LT(s.els_sidecar_bytes, 2000u * 4 * 4);
}

}  // namespace
}  // namespace ht
