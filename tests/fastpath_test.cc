// Tests for the search-hot-path primitives: DataPageScan must agree with
// full deserialization, and ElsCodec::DecodedIntersects must agree with
// Decode + Intersects on random inputs.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/els.h"
#include "core/node.h"

namespace ht {
namespace {

TEST(DataPageScanTest, AgreesWithDeserialize) {
  Rng rng(1901);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t dim = 1 + static_cast<uint32_t>(rng.NextBelow(64));
    const size_t page_size = 4096;
    DataNode node;
    const size_t n = rng.NextBelow(DataNode::Capacity(dim, page_size) + 1);
    for (size_t i = 0; i < n; ++i) {
      DataEntry e;
      e.id = rng.NextU64();
      for (uint32_t d = 0; d < dim; ++d) {
        e.vec.push_back(static_cast<float>(rng.NextDouble()));
      }
      node.entries.push_back(std::move(e));
    }
    std::vector<uint8_t> page(page_size, 0xaa);
    node.Serialize(page.data(), page.size(), dim);

    DataPageScan scan(page.data(), page.size(), dim);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan.count(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scan.id(i), node.entries[i].id) << trial << ":" << i;
      auto v = scan.vec(i);
      ASSERT_EQ(v.size(), dim);
      for (uint32_t d = 0; d < dim; ++d) {
        ASSERT_EQ(v[d], node.entries[i].vec[d]) << trial << ":" << i;
      }
    }
  }
}

TEST(DecodedIntersectsTest, AgreesWithDecodePlusIntersects) {
  Rng rng(1903);
  for (int trial = 0; trial < 500; ++trial) {
    const uint32_t dim = 1 + static_cast<uint32_t>(rng.NextBelow(16));
    const uint32_t bits = 1 + static_cast<uint32_t>(rng.NextBelow(12));
    ElsCodec codec(dim, bits);
    std::vector<float> rlo(dim), rhi(dim), llo(dim), lhi(dim), qlo(dim),
        qhi(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      float a = static_cast<float>(rng.NextDouble());
      float b = static_cast<float>(rng.NextDouble());
      rlo[d] = std::min(a, b);
      rhi[d] = std::max(a, b) + 1e-3f;
      float c = static_cast<float>(rng.Uniform(rlo[d], rhi[d]));
      float e = static_cast<float>(rng.Uniform(rlo[d], rhi[d]));
      llo[d] = std::min(c, e);
      lhi[d] = std::max(c, e);
      a = static_cast<float>(rng.Uniform(-0.2, 1.2));
      b = static_cast<float>(rng.Uniform(-0.2, 1.2));
      qlo[d] = std::min(a, b);
      qhi[d] = std::max(a, b);
    }
    Box ref = Box::FromBounds(rlo, rhi);
    Box live = Box::FromBounds(llo, lhi);
    Box query = Box::FromBounds(qlo, qhi);
    ElsCode code = codec.Encode(live, ref);
    const bool slow = query.Intersects(codec.Decode(code, ref));
    const bool fast = codec.DecodedIntersects(code, ref, query);
    ASSERT_EQ(fast, slow) << "trial " << trial;
  }
}

TEST(DecodedIntersectsTest, EmptyCodeFallsBackToRef) {
  ElsCodec codec(2, 4);
  Box ref = Box::FromBounds({0.2f, 0.2f}, {0.8f, 0.8f});
  Box hit = Box::FromBounds({0.0f, 0.0f}, {0.3f, 0.3f});
  Box miss = Box::FromBounds({0.9f, 0.9f}, {1.0f, 1.0f});
  EXPECT_TRUE(codec.DecodedIntersects({}, ref, hit));
  EXPECT_FALSE(codec.DecodedIntersects({}, ref, miss));
}

TEST(GetBitsTest, WordExtractionMatchesBitLoop) {
  Rng rng(1907);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> buf(16);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
    const uint32_t nbits = 1 + static_cast<uint32_t>(rng.NextBelow(16));
    const size_t off = rng.NextBelow(buf.size() * 8 - nbits);
    // Reference: bit-by-bit extraction.
    uint32_t want = 0;
    for (uint32_t i = 0; i < nbits; ++i) {
      const size_t bit = off + i;
      if ((buf[bit / 8] >> (bit % 8)) & 1u) want |= (1u << i);
    }
    ASSERT_EQ(els_detail::GetBits(buf, off, nbits), want)
        << "off=" << off << " nbits=" << nbits;
  }
}

TEST(GetBitsTest, ReadNearBufferEnd) {
  std::vector<uint8_t> buf = {0xff, 0xff};
  // A 9-bit read starting at bit 7 touches the final byte only partially.
  EXPECT_EQ(els_detail::GetBits(buf, 7, 9), 0x1ffu);
}

}  // namespace
}  // namespace ht
