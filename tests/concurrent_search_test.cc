// Concurrency tests for the shared-read query path: N reader threads over
// one HybridTree must return byte-identical results to a single-threaded
// run, deterministically, under shuffled per-thread scheduling — and the
// whole file must run cleanly under ThreadSanitizer (the CI tsan job does).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"
#include "exec/query_executor.h"
#include "exec/thread_pool.h"
#include "geometry/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace ht {
namespace {

constexpr uint32_t kDim = 16;
constexpr size_t kPoints = 2000;
constexpr size_t kQueries = 40;
constexpr size_t kReaders = 8;

/// FOURIER 16-d tree + calibrated box/range/knn workloads + single-threaded
/// reference answers.
class ConcurrentSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    data_ = GenFourier(kPoints, kDim, rng);
    file_ = std::make_unique<MemPagedFile>();
    HybridTreeOptions opts;
    opts.dim = kDim;
    auto tree_r = HybridTree::Create(opts, file_.get());
    ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
    tree_ = std::move(tree_r).ValueUnsafe();
    for (size_t i = 0; i < data_.size(); ++i) {
      ASSERT_TRUE(tree_->Insert(data_.Row(i), i).ok());
    }

    const double side = CalibrateBoxSide(data_, 0.01, 10, rng);
    auto centers = MakeQueryCenters(data_, kQueries, rng);
    for (const auto& c : centers) {
      boxes_.push_back(MakeBoxQuery(c, side));
      centers_.push_back(std::vector<float>(c.begin(), c.end()));
    }
    radius_ = CalibrateRangeRadius(data_, metric_, 0.01, 10, rng);

    // Single-threaded reference answers (serial mode).
    for (size_t i = 0; i < kQueries; ++i) {
      ref_box_.push_back(tree_->SearchBox(boxes_[i]).ValueOrDie());
      ref_range_.push_back(
          tree_->SearchRange(centers_[i], radius_, metric_).ValueOrDie());
      ref_knn_.push_back(tree_->SearchKnn(centers_[i], 10, metric_).ValueOrDie());
    }
  }

  Dataset data_;
  std::unique_ptr<MemPagedFile> file_;
  std::unique_ptr<HybridTree> tree_;
  L2Metric metric_;
  std::vector<Box> boxes_;
  std::vector<std::vector<float>> centers_;
  double radius_ = 0.0;
  std::vector<std::vector<uint64_t>> ref_box_;
  std::vector<std::vector<uint64_t>> ref_range_;
  std::vector<std::vector<std::pair<double, uint64_t>>> ref_knn_;
};

TEST_F(ConcurrentSearchTest, ReadersMatchSingleThreadedRunExactly) {
  ASSERT_TRUE(tree_->SetConcurrentReads(true).ok());

  struct PerThread {
    std::vector<std::vector<uint64_t>> box;
    std::vector<std::vector<uint64_t>> range;
    std::vector<std::vector<std::pair<double, uint64_t>>> knn;
    Status error;
  };
  std::vector<PerThread> results(kReaders);

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      PerThread& mine = results[t];
      mine.box.resize(kQueries);
      mine.range.resize(kQueries);
      mine.knn.resize(kQueries);
      // Each thread visits the queries in its own shuffled order, so the
      // page-cache and scheduling interleavings differ per thread.
      std::vector<size_t> order(kQueries);
      std::iota(order.begin(), order.end(), size_t{0});
      Rng rng(1000 + t);
      for (size_t i = kQueries; i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextU64() % i]);
      }
      for (size_t i : order) {
        auto b = tree_->SearchBox(boxes_[i]);
        auto r = tree_->SearchRange(centers_[i], radius_, metric_);
        auto k = tree_->SearchKnn(centers_[i], 10, metric_);
        if (!b.ok() || !r.ok() || !k.ok()) {
          mine.error = !b.ok() ? b.status() : (!r.ok() ? r.status() : k.status());
          return;
        }
        mine.box[i] = std::move(b).ValueUnsafe();
        mine.range[i] = std::move(r).ValueUnsafe();
        mine.knn[i] = std::move(k).ValueUnsafe();
      }
    });
  }
  for (auto& th : readers) th.join();
  ASSERT_TRUE(tree_->SetConcurrentReads(false).ok());

  for (size_t t = 0; t < kReaders; ++t) {
    ASSERT_TRUE(results[t].error.ok()) << results[t].error.ToString();
    for (size_t i = 0; i < kQueries; ++i) {
      // Byte-identical: same ids in the same (deterministic traversal)
      // order, same distances.
      EXPECT_EQ(results[t].box[i], ref_box_[i]) << "thread " << t << " q" << i;
      EXPECT_EQ(results[t].range[i], ref_range_[i])
          << "thread " << t << " q" << i;
      EXPECT_EQ(results[t].knn[i], ref_knn_[i]) << "thread " << t << " q" << i;
    }
  }
}

TEST_F(ConcurrentSearchTest, SerialResultsUnchangedAfterModeRoundTrip) {
  ASSERT_TRUE(tree_->SetConcurrentReads(true).ok());
  ASSERT_TRUE(tree_->SetConcurrentReads(false).ok());
  for (size_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(tree_->SearchBox(boxes_[i]).ValueOrDie(), ref_box_[i]);
  }
  // Logical-read accounting still works after the round trip.
  tree_->pool().ResetStats();
  (void)tree_->SearchBox(boxes_[0]).ValueOrDie();
  EXPECT_GT(tree_->pool().stats().logical_reads, 0u);
}

TEST_F(ConcurrentSearchTest, ExecutorMatchesReferenceAndAggregatesIo) {
  Workload w;
  for (size_t i = 0; i < kQueries; ++i) {
    w.queries.push_back(Query::MakeBox(boxes_[i]));
    w.queries.push_back(Query::MakeRange(centers_[i], radius_));
    w.queries.push_back(Query::MakeKnn(centers_[i], 10));
  }
  w.metric = &metric_;

  ThreadPool pool(kReaders);
  QueryExecutor exec(tree_.get(), &pool);
  auto report_r = exec.Run(w);
  ASSERT_TRUE(report_r.ok()) << report_r.status().ToString();
  const BatchReport& report = *report_r;

  ASSERT_EQ(report.results.size(), 3 * kQueries);
  EXPECT_EQ(report.completed, 3 * kQueries);
  EXPECT_EQ(report.failed, 0u);
  for (size_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(report.results[3 * i].ids, ref_box_[i]);
    EXPECT_EQ(report.results[3 * i + 1].ids, ref_range_[i]);
    EXPECT_EQ(report.results[3 * i + 2].neighbors, ref_knn_[i]);
  }

  // Per-worker IoStats sum to the aggregate, and the batch actually did
  // pool I/O attributed to workers.
  EXPECT_EQ(report.per_worker_io.size(), kReaders);
  IoStats sum;
  for (const IoStats& io : report.per_worker_io) sum.Accumulate(io);
  EXPECT_EQ(sum.logical_reads, report.io.logical_reads);
  EXPECT_GT(report.io.logical_reads, 0u);
  EXPECT_EQ(report.latency.count, report.completed);
  EXPECT_GE(report.latency.p99, report.latency.p50);

  // The executor restored the serial configuration.
  EXPECT_FALSE(tree_->concurrent_reads());
  EXPECT_FALSE(tree_->pool().concurrent_mode());
}

TEST_F(ConcurrentSearchTest, ExecutorHonoursCancellation) {
  Workload w;
  for (size_t i = 0; i < kQueries; ++i) {
    w.queries.push_back(Query::MakeBox(boxes_[i]));
  }
  std::atomic<bool> cancel{true};  // cancelled before the batch starts
  ExecOptions opts;
  opts.cancel = &cancel;

  ThreadPool pool(2);
  QueryExecutor exec(tree_.get(), &pool);
  auto report_r = exec.Run(w, opts);
  ASSERT_TRUE(report_r.ok()) << report_r.status().ToString();
  EXPECT_EQ(report_r->completed, 0u);
  EXPECT_EQ(report_r->cancelled, kQueries);
  for (const QueryResult& r : report_r->results) {
    EXPECT_TRUE(r.status.IsCancelled());
  }
}

TEST_F(ConcurrentSearchTest, ExecutorHonoursDeadline) {
  Workload w;
  for (size_t i = 0; i < kQueries; ++i) {
    w.queries.push_back(Query::MakeBox(boxes_[i]));
  }
  ExecOptions opts;
  opts.deadline_seconds = 1e-9;  // already expired when workers start

  ThreadPool pool(2);
  QueryExecutor exec(tree_.get(), &pool);
  auto report_r = exec.Run(w, opts);
  ASSERT_TRUE(report_r.ok()) << report_r.status().ToString();
  EXPECT_EQ(report_r->completed, 0u);
  EXPECT_EQ(report_r->expired, kQueries);
}

TEST(ConcurrentBufferPoolTest, ConcurrentFetchesAccountExactly) {
  // Hammer one pool from many threads; pins stay balanced and logical
  // reads are counted exactly once per Fetch.
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  constexpr size_t kPages = 64;
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    h.data()[0] = static_cast<uint8_t>(i);
    h.MarkDirty();
    ids.push_back(h.id());
  }
  ASSERT_TRUE(pool.EvictAll().ok());  // next fetches are physical
  ASSERT_TRUE(pool.SetConcurrentMode(true).ok());
  pool.ResetStats();

  constexpr size_t kThreads = 8;
  constexpr size_t kFetchesPerThread = 2000;
  std::vector<IoStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> data_mismatches{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      IoStatsScope scope(&per_thread[t]);
      Rng rng(t + 1);
      for (size_t i = 0; i < kFetchesPerThread; ++i) {
        const size_t pick = rng.NextU64() % kPages;
        auto h = pool.Fetch(ids[pick]);
        if (!h.ok() || h->data()[0] != static_cast<uint8_t>(pick)) {
          data_mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(data_mismatches.load(), 0);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  const IoStats total = pool.StatsSnapshot();
  EXPECT_EQ(total.logical_reads, kThreads * kFetchesPerThread);
  // Unbounded pool: each page misses at most once across all threads.
  EXPECT_LE(total.physical_reads, kPages);
  IoStats sum;
  for (const IoStats& io : per_thread) sum.Accumulate(io);
  EXPECT_EQ(sum.logical_reads, total.logical_reads);
  EXPECT_EQ(sum.physical_reads, total.physical_reads);

  ASSERT_TRUE(pool.SetConcurrentMode(false).ok());
  // Frames survive the mode switch: everything is cached again.
  pool.ResetStats();
  { PageHandle h = pool.Fetch(ids[0]).ValueOrDie(); }
  EXPECT_EQ(pool.stats().physical_reads, 0u);
}

TEST(ConcurrentBufferPoolTest, ModeSwitchRequiresQuiescence) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageHandle pinned = pool.New().ValueOrDie();
  EXPECT_TRUE(pool.SetConcurrentMode(true).IsInvalidArgument());
  pinned.Release();
  EXPECT_TRUE(pool.SetConcurrentMode(true).ok());
  EXPECT_TRUE(pool.concurrent_mode());
}

}  // namespace
}  // namespace ht
