// Tests for the KDB-tree baseline: exact queries, clean-partition
// invariants, and the authentic pathologies (cascading splits).

#include "baselines/kdb_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "data/workload.h"

namespace ht {
namespace {

TEST(KdbTreeTest, MatchesBruteForceBoxSearch) {
  Rng rng(431);
  Dataset data = GenUniform(3000, 4, rng);
  MemPagedFile file(512);
  auto tree = KdbTree::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok()) << i;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (int q = 0; q < 30; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    Box query = MakeBoxQuery(centers[0], 0.3);
    auto got = tree->SearchBox(query).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceBox(data, query)) << q;
  }
}

TEST(KdbTreeTest, RangeAndKnnMatchBruteForce) {
  Rng rng(433);
  Dataset data = GenClustered(2000, 3, 5, 0.08, rng);
  MemPagedFile file(512);
  auto tree = KdbTree::Create(3, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  L1Metric l1;
  for (int q = 0; q < 10; ++q) {
    auto centers = MakeQueryCenters(data, 1, rng);
    auto got = tree->SearchRange(centers[0], 0.3, l1).ValueOrDie();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForceRange(data, centers[0], 0.3, l1));
    auto got_k = tree->SearchKnn(centers[0], 15, l1).ValueOrDie();
    auto want_k = BruteForceKnn(data, centers[0], 15, l1);
    ASSERT_EQ(got_k.size(), want_k.size());
    for (size_t i = 0; i < got_k.size(); ++i) {
      ASSERT_NEAR(got_k[i].first, want_k[i].first, 1e-9);
    }
  }
}

TEST(KdbTreeTest, CascadingSplitsHappen) {
  // Paper §3.1: "Single dimension splits in the kDB-tree necessitate
  // costly cascading splits". With enough skewed data they must occur.
  Rng rng(439);
  Dataset data = GenClustered(8000, 6, 3, 0.04, rng);
  MemPagedFile file(512);
  auto tree = KdbTree::Create(6, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  KdbStats stats = tree->ComputeStats().ValueOrDie();
  EXPECT_GT(stats.cascading_splits, 0u);
  // No utilization guarantee: some node is under 40%, or empty nodes exist.
  EXPECT_TRUE(stats.min_data_utilization < 0.4 || stats.empty_data_nodes > 0);
}

TEST(KdbTreeTest, DeleteRemovesEntries) {
  Rng rng(443);
  Dataset data = GenUniform(1000, 2, rng);
  MemPagedFile file(512);
  auto tree = KdbTree::Create(2, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree->Delete(data.Row(i), i).ok()) << i;
  }
  EXPECT_EQ(tree->size(), 500u);
  EXPECT_TRUE(tree->Delete(data.Row(0), 0).IsNotFound());
  auto got = tree->SearchBox(Box::UnitCube(2)).ValueOrDie();
  EXPECT_EQ(got.size(), 500u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST(KdbTreeTest, DuplicatePageSplitFailsCleanly) {
  // Clean splits cannot separate identical points; the KDB-tree reports
  // the limitation instead of corrupting itself.
  MemPagedFile file(512);
  auto tree = KdbTree::Create(2, &file).ValueOrDie();
  const std::vector<float> p = {0.5f, 0.5f};
  const size_t cap = tree->data_node_capacity();
  Status last = Status::OK();
  for (size_t i = 0; i <= cap + 1 && last.ok(); ++i) {
    last = tree->Insert(p, i);
  }
  EXPECT_FALSE(last.ok());
  EXPECT_EQ(last.code(), StatusCode::kInternal);
}

TEST(KdbTreeTest, AccessCountsExceedHybridStyleTrees) {
  // Sanity: the tree functions as a disk index (selective queries touch a
  // subset of pages).
  Rng rng(449);
  Dataset data = GenUniform(4000, 4, rng);
  MemPagedFile file(512);
  auto tree = KdbTree::Create(4, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree->Insert(data.Row(i), i).ok());
  }
  KdbStats stats = tree->ComputeStats().ValueOrDie();
  tree->pool().ResetStats();
  (void)tree->SearchBox(MakeBoxQuery(data.Row(0), 0.1)).ValueOrDie();
  EXPECT_LT(tree->pool().stats().logical_reads,
            stats.data_nodes + stats.index_nodes);
}

}  // namespace
}  // namespace ht
