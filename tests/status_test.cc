// Unit tests for Status / Result error handling.

#include "common/result.h"
#include "common/status.h"

#include <gtest/gtest.h>

#include <vector>

namespace ht {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing page 7");
  EXPECT_EQ(s.ToString(), "NotFound: missing page 7");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::IOError("disk gone");
  Status copy = s;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_TRUE(s.IsIOError());
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Corruption("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

Result<int> Doubler(Result<int> in) {
  HT_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::NotFound("nope")).status().IsNotFound());
}

Status FailThrough() {
  HT_RETURN_NOT_OK(Status::OutOfRange("limit"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kOutOfRange);
}

// --- macro hygiene contracts (see the contract block in common/macros.h) ---

Status CountingStatus(int* evals, bool fail) {
  ++*evals;
  return fail ? Status::Internal("boom") : Status::OK();
}

Result<int> CountingResult(int* evals, bool fail) {
  ++*evals;
  if (fail) return Status::Internal("boom");
  return 7;
}

Status ReturnNotOkTwice(int* evals, bool fail) {
  // Two expansions in ONE scope: unique temporaries must not shadow.
  HT_RETURN_NOT_OK(CountingStatus(evals, fail));
  HT_RETURN_NOT_OK(CountingStatus(evals, fail));
  return Status::OK();
}

TEST(MacroContractTest, ReturnNotOkEvaluatesExactlyOnce) {
  int evals = 0;
  EXPECT_TRUE(ReturnNotOkTwice(&evals, false).ok());
  EXPECT_EQ(evals, 2);  // each expansion evaluated its argument once
  evals = 0;
  EXPECT_FALSE(ReturnNotOkTwice(&evals, true).ok());
  EXPECT_EQ(evals, 1);  // first failure short-circuits, still one eval
}

Status AssignOrReturnTwice(int* evals, bool fail, int* out) {
  HT_ASSIGN_OR_RETURN(int a, CountingResult(evals, fail));
  HT_ASSIGN_OR_RETURN(int b, CountingResult(evals, fail));
  *out = a + b;
  return Status::OK();
}

TEST(MacroContractTest, AssignOrReturnEvaluatesExactlyOnce) {
  int evals = 0;
  int out = 0;
  EXPECT_TRUE(AssignOrReturnTwice(&evals, false, &out).ok());
  EXPECT_EQ(evals, 2);
  EXPECT_EQ(out, 14);
  evals = 0;
  EXPECT_FALSE(AssignOrReturnTwice(&evals, true, &out).ok());
  EXPECT_EQ(evals, 1);
}

Status ReturnNotOkAroundCallerTemp(int* evals) {
  // The argument may reference a variable named like an internal
  // temporary; __COUNTER__-unique names keep it visible.
  Status _ht_status_0 = Status::OK();
  HT_RETURN_NOT_OK(CountingStatus(evals, !_ht_status_0.ok()));
  return _ht_status_0;
}

TEST(MacroContractTest, InternalTemporariesDoNotShadowCallerNames) {
  int evals = 0;
  EXPECT_TRUE(ReturnNotOkAroundCallerTemp(&evals).ok());
  EXPECT_EQ(evals, 1);
}

TEST(MacroContractTest, CheckOkEvaluatesExactlyOnce) {
  int evals = 0;
  HT_CHECK_OK(CountingStatus(&evals, false));
  EXPECT_EQ(evals, 1);
}

TEST(MacroContractTest, DcheckEvaluationMatchesBuildType) {
  int evals = 0;
  HT_DCHECK(++evals > 0);
#ifdef NDEBUG
  EXPECT_EQ(evals, 0);  // compiled but never evaluated
#else
  EXPECT_EQ(evals, 1);
#endif
}

TEST(MacroContractTest, AssignOrReturnMovesTheValue) {
  auto f = []() -> Status {
    std::vector<int> v;
    HT_ASSIGN_OR_RETURN(
        v, Result<std::vector<int>>(std::vector<int>{1, 2, 3}));
    return v.size() == 3 ? Status::OK() : Status::Internal("lost value");
  };
  EXPECT_TRUE(f().ok());
}

}  // namespace
}  // namespace ht
