// Unit tests for Status / Result error handling.

#include "common/result.h"
#include "common/status.h"

#include <gtest/gtest.h>

namespace ht {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing page 7");
  EXPECT_EQ(s.ToString(), "NotFound: missing page 7");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::IOError("disk gone");
  Status copy = s;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_TRUE(s.IsIOError());
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Corruption("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

Result<int> Doubler(Result<int> in) {
  HT_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::NotFound("nope")).status().IsNotFound());
}

Status FailThrough() {
  HT_RETURN_NOT_OK(Status::OutOfRange("limit"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ht
