// Unit tests for the Dataset container.

#include "data/dataset.h"

#include <gtest/gtest.h>

#include <string>

namespace ht {
namespace {

Dataset MakeCounting(uint32_t dim, size_t n) {
  Dataset d(dim, n);
  for (size_t i = 0; i < n; ++i) {
    auto row = d.MutableRow(i);
    for (uint32_t k = 0; k < dim; ++k) {
      row[k] = static_cast<float>(i * dim + k);
    }
  }
  return d;
}

TEST(DatasetTest, SizeAndRows) {
  Dataset d = MakeCounting(3, 5);
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_FLOAT_EQ(d.Row(2)[1], 7.0f);
}

TEST(DatasetTest, Append) {
  Dataset d(2, 0);
  const float row[2] = {1.0f, 2.0f};
  d.Append(std::span<const float>(row, 2));
  EXPECT_EQ(d.size(), 1u);
  EXPECT_FLOAT_EQ(d.Row(0)[1], 2.0f);
}

TEST(DatasetTest, PrefixKeepsLeadingDims) {
  Dataset d = MakeCounting(4, 3);
  Dataset p = d.Prefix(2);
  EXPECT_EQ(p.dim(), 2u);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_FLOAT_EQ(p.Row(1)[0], d.Row(1)[0]);
  EXPECT_FLOAT_EQ(p.Row(1)[1], d.Row(1)[1]);
}

TEST(DatasetTest, HeadKeepsLeadingRows) {
  Dataset d = MakeCounting(2, 10);
  Dataset h = d.Head(4);
  EXPECT_EQ(h.size(), 4u);
  EXPECT_FLOAT_EQ(h.Row(3)[0], d.Row(3)[0]);
  EXPECT_EQ(d.Head(99).size(), 10u);  // clamped
}

TEST(DatasetTest, NormalizeUnitCube) {
  Dataset d(2, 3);
  float vals[3][2] = {{-1.0f, 10.0f}, {0.0f, 20.0f}, {1.0f, 10.0f}};
  for (size_t i = 0; i < 3; ++i) {
    auto row = d.MutableRow(i);
    row[0] = vals[i][0];
    row[1] = vals[i][1];
  }
  d.NormalizeUnitCube();
  for (size_t i = 0; i < 3; ++i) {
    for (uint32_t k = 0; k < 2; ++k) {
      EXPECT_GE(d.Row(i)[k], 0.0f);
      EXPECT_LE(d.Row(i)[k], 1.0f);
    }
  }
  EXPECT_FLOAT_EQ(d.Row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(d.Row(1)[0], 0.5f);
  EXPECT_FLOAT_EQ(d.Row(2)[0], 1.0f);
}

TEST(DatasetTest, SaveLoadRoundTrip) {
  const std::string path = std::string(::testing::TempDir()) + "/ds.bin";
  Dataset d = MakeCounting(3, 7);
  ASSERT_TRUE(d.SaveTo(path).ok());
  Dataset back = Dataset::LoadFrom(path).ValueOrDie();
  ASSERT_EQ(back.dim(), 3u);
  ASSERT_EQ(back.size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    for (uint32_t k = 0; k < 3; ++k) {
      EXPECT_FLOAT_EQ(back.Row(i)[k], d.Row(i)[k]);
    }
  }
}

TEST(DatasetTest, LoadGarbageFails) {
  const std::string path = std::string(::testing::TempDir()) + "/garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fwrite("garbage", 1, 7, f);
  fclose(f);
  EXPECT_FALSE(Dataset::LoadFrom(path).ok());
}

}  // namespace
}  // namespace ht
