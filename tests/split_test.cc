// Tests for the EDA-optimal split algorithms (§3.2, §3.3).

#include "core/split.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace ht {
namespace {

std::vector<DataEntry> MakeEntries(const std::vector<std::vector<float>>& vs) {
  std::vector<DataEntry> out;
  for (size_t i = 0; i < vs.size(); ++i) {
    out.push_back(DataEntry{i, vs[i]});
  }
  return out;
}

TEST(DataSplitTest, EdaPicksMaxExtentDimension) {
  // BR is wide in dim 1; the EDA-optimal choice must split dim 1 no matter
  // where the data sits (§3.2: independent of the data distribution).
  Box br = Box::FromBounds({0.4f, 0.0f}, {0.6f, 1.0f});
  auto entries = MakeEntries({{0.41f, 0.1f},
                              {0.45f, 0.2f},
                              {0.5f, 0.7f},
                              {0.55f, 0.8f},
                              {0.59f, 0.9f},
                              {0.42f, 0.95f}});
  DataSplit s = ChooseDataSplit(br, entries, 2, SplitPolicy::kEdaOptimal);
  EXPECT_EQ(s.dim, 1u);
  EXPECT_FALSE(s.degenerate);
}

TEST(DataSplitTest, PositionClosestToMiddle) {
  Box br = Box::FromBounds({0.0f}, {1.0f});
  auto entries = MakeEntries(
      {{0.1f}, {0.2f}, {0.3f}, {0.45f}, {0.55f}, {0.8f}, {0.9f}, {0.95f}});
  DataSplit s = ChooseDataSplit(br, entries, 2, SplitPolicy::kEdaOptimal);
  // Middle of BR extent is 0.5; the candidate midpoint closest to it is
  // (0.45+0.55)/2 = 0.5.
  EXPECT_FLOAT_EQ(s.pos, 0.5f);
  EXPECT_EQ(s.left.size(), 4u);
  EXPECT_EQ(s.right.size(), 4u);
}

TEST(DataSplitTest, UtilizationShiftsPositionOffMiddle) {
  Box br = Box::FromBounds({0.0f}, {1.0f});
  // All points in the left fifth of the BR; splitting at the geometric
  // middle would leave the right side empty. The split must shift left
  // "just enough to satisfy the utilization requirement" (§3.2 footnote).
  auto entries = MakeEntries(
      {{0.01f}, {0.02f}, {0.05f}, {0.08f}, {0.12f}, {0.15f}, {0.18f}, {0.2f}});
  DataSplit s = ChooseDataSplit(br, entries, 3, SplitPolicy::kEdaOptimal);
  EXPECT_GE(s.left.size(), 3u);
  EXPECT_GE(s.right.size(), 3u);
  // Pos is the rightmost valid midpoint (closest to 0.5).
  EXPECT_FLOAT_EQ(s.pos, (0.12f + 0.15f) / 2);
}

TEST(DataSplitTest, SplitIsCleanPartitionByValue) {
  Rng rng(89);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<float>> vs;
    for (int i = 0; i < 30; ++i) {
      vs.push_back({static_cast<float>(rng.NextDouble()),
                    static_cast<float>(rng.NextDouble()),
                    static_cast<float>(rng.NextDouble())});
    }
    auto entries = MakeEntries(vs);
    Box br = Box::UnitCube(3);
    DataSplit s = ChooseDataSplit(br, entries, 10, SplitPolicy::kEdaOptimal);
    ASSERT_FALSE(s.degenerate);
    ASSERT_EQ(s.left.size() + s.right.size(), entries.size());
    for (uint32_t i : s.left) ASSERT_LE(entries[i].vec[s.dim], s.pos);
    for (uint32_t i : s.right) ASSERT_GT(entries[i].vec[s.dim], s.pos);
    ASSERT_GE(s.left.size(), 10u);
    ASSERT_GE(s.right.size(), 10u);
  }
}

TEST(DataSplitTest, DuplicateHeavyDataFallsBackToOtherDims) {
  // Dim 0 has the max extent courtesy of one outlier, but every split
  // position on it violates utilization; dim 1 must be used instead.
  Box br = Box::FromBounds({0.0f, 0.3f}, {1.0f, 0.7f});
  auto entries = MakeEntries({{0.0f, 0.31f},
                              {1.0f, 0.42f},
                              {1.0f, 0.48f},
                              {1.0f, 0.55f},
                              {1.0f, 0.61f},
                              {1.0f, 0.69f}});
  DataSplit s = ChooseDataSplit(br, entries, 2, SplitPolicy::kEdaOptimal);
  EXPECT_EQ(s.dim, 1u);
  EXPECT_FALSE(s.degenerate);
}

TEST(DataSplitTest, AllIdenticalPointsDegenerate) {
  auto entries = MakeEntries(
      {{0.5f, 0.5f}, {0.5f, 0.5f}, {0.5f, 0.5f}, {0.5f, 0.5f}});
  DataSplit s =
      ChooseDataSplit(Box::UnitCube(2), entries, 2, SplitPolicy::kEdaOptimal);
  EXPECT_TRUE(s.degenerate);
  EXPECT_EQ(s.left.size(), 2u);
  EXPECT_EQ(s.right.size(), 2u);
  EXPECT_FLOAT_EQ(s.pos, 0.5f);
}

TEST(DataSplitTest, VamPicksMaxVarianceDimension) {
  // Dim 0 has the max extent (one outlier) but tiny variance; dim 1 has
  // high variance. VAMSplit picks dim 1 where EDA picks dim 0.
  Box br = Box::UnitCube(2);
  std::vector<std::vector<float>> vs;
  Rng rng(97);
  for (int i = 0; i < 40; ++i) {
    vs.push_back({0.5f, (i % 2) ? 0.1f : 0.9f});
  }
  vs.push_back({1.0f, 0.5f});
  vs.push_back({0.0f, 0.5f});
  auto entries = MakeEntries(vs);
  DataSplit vam = ChooseDataSplit(br, entries, 10, SplitPolicy::kVamSplit);
  EXPECT_EQ(vam.dim, 1u);
}

// ---------------------------------------------------------------------------
// Bipartition
// ---------------------------------------------------------------------------

TEST(BipartitionTest, DisjointSegmentsSplitCleanly) {
  std::vector<Segment> segs = {{0.0f, 0.2f}, {0.25f, 0.45f}, {0.5f, 0.7f},
                               {0.75f, 1.0f}};
  Bipartition p = BipartitionSegments(segs, 2);
  EXPECT_EQ(p.left.size(), 2u);
  EXPECT_EQ(p.right.size(), 2u);
  EXPECT_DOUBLE_EQ(p.overlap, 0.0);
  EXPECT_LE(p.lsp, p.rsp);
  // Left group must be the two leftmost segments.
  std::vector<uint32_t> l = p.left;
  std::sort(l.begin(), l.end());
  EXPECT_EQ(l[0], 0u);
  EXPECT_EQ(l[1], 1u);
}

TEST(BipartitionTest, OverlapOnlyWhenForced) {
  // One long segment spans everything: overlap is unavoidable.
  std::vector<Segment> segs = {{0.0f, 1.0f}, {0.0f, 0.3f}, {0.7f, 1.0f},
                               {0.1f, 0.4f}};
  Bipartition p = BipartitionSegments(segs, 2);
  EXPECT_GT(p.overlap, 0.0);
  EXPECT_GT(p.lsp, p.rsp);
}

TEST(BipartitionTest, BoundariesCoverTheirGroups) {
  Rng rng(101);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + rng.NextBelow(40);
    std::vector<Segment> segs(n);
    for (auto& s : segs) {
      float a = static_cast<float>(rng.NextDouble());
      float b = static_cast<float>(rng.NextDouble());
      s.lo = std::min(a, b);
      s.hi = std::max(a, b);
    }
    const size_t min_count = 1 + rng.NextBelow(std::max<size_t>(1, n / 2));
    Bipartition p = BipartitionSegments(segs, min_count);
    ASSERT_EQ(p.left.size() + p.right.size(), n);
    ASSERT_FALSE(p.left.empty());
    ASSERT_FALSE(p.right.empty());
    ASSERT_GE(p.left.size(), std::min(min_count, n / 2));
    ASSERT_GE(p.right.size(), std::min(min_count, n / 2));
    for (uint32_t i : p.left) ASSERT_LE(segs[i].hi, p.lsp);
    for (uint32_t i : p.right) ASSERT_GE(segs[i].lo, p.rsp);
    ASSERT_NEAR(p.overlap, std::max(0.0, double(p.lsp) - p.rsp), 1e-12);
  }
}

TEST(IndexSplitCostTest, FixedModelFormula) {
  // (w + r) / (s + r), §3.3.
  EXPECT_DOUBLE_EQ(IndexSplitCost(0.5, 0.0, QuerySizeModel::kFixed, 0.1),
                   0.1 / 0.6);
  EXPECT_DOUBLE_EQ(IndexSplitCost(0.5, 0.2, QuerySizeModel::kFixed, 0.1),
                   0.3 / 0.6);
}

TEST(IndexSplitCostTest, UniformModelClosedForm) {
  // 1 + (w - s) ln((s+1)/s).
  const double s = 0.25, w = 0.05;
  EXPECT_NEAR(IndexSplitCost(s, w, QuerySizeModel::kUniform, 0.0),
              1.0 + (w - s) * std::log((s + 1.0) / s), 1e-12);
  // Numerically verify against the integral.
  double integral = 0.0;
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    const double r = (i + 0.5) / steps;
    integral += (w + r) / (s + r) / steps;
  }
  EXPECT_NEAR(IndexSplitCost(s, w, QuerySizeModel::kUniform, 0.0), integral,
              1e-5);
}

TEST(IndexSplitCostTest, MonotoneInOverlap) {
  for (double w = 0.0; w < 0.5; w += 0.05) {
    EXPECT_LT(IndexSplitCost(0.5, w, QuerySizeModel::kFixed, 0.1),
              IndexSplitCost(0.5, w + 0.05, QuerySizeModel::kFixed, 0.1));
  }
}

TEST(IndexSplitTest, PrefersCleanSplitDimension) {
  // Children tile dim 0 cleanly but all span dim 1 fully: dim 0 must win.
  std::vector<Box> kids = {
      Box::FromBounds({0.0f, 0.0f}, {0.25f, 1.0f}),
      Box::FromBounds({0.25f, 0.0f}, {0.5f, 1.0f}),
      Box::FromBounds({0.5f, 0.0f}, {0.75f, 1.0f}),
      Box::FromBounds({0.75f, 0.0f}, {1.0f, 1.0f}),
  };
  IndexSplit s =
      ChooseIndexSplit(Box::UnitCube(2), kids, 1, {0, 1},
                       SplitPolicy::kEdaOptimal, QuerySizeModel::kFixed, 0.1);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.dim, 0u);
  EXPECT_DOUBLE_EQ(s.parts.overlap, 0.0);
}

TEST(IndexSplitTest, RestrictedCandidatesAreHonored) {
  std::vector<Box> kids = {
      Box::FromBounds({0.0f, 0.0f}, {0.5f, 0.5f}),
      Box::FromBounds({0.5f, 0.0f}, {1.0f, 0.5f}),
      Box::FromBounds({0.0f, 0.5f}, {0.5f, 1.0f}),
      Box::FromBounds({0.5f, 0.5f}, {1.0f, 1.0f}),
  };
  // Restrict to dim 1 only (Lemma 1 style): result must use dim 1.
  IndexSplit s =
      ChooseIndexSplit(Box::UnitCube(2), kids, 1, {1},
                       SplitPolicy::kEdaOptimal, QuerySizeModel::kFixed, 0.1);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.dim, 1u);
}

TEST(IndexSplitTest, DegenerateRegionFallsBack) {
  std::vector<Box> kids = {Box::FromBounds({0.5f}, {0.5f}),
                           Box::FromBounds({0.5f}, {0.5f})};
  Box point_region = Box::FromBounds({0.5f}, {0.5f});
  IndexSplit s =
      ChooseIndexSplit(point_region, kids, 1, {0}, SplitPolicy::kEdaOptimal,
                       QuerySizeModel::kFixed, 0.1);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.parts.left.size() + s.parts.right.size(), 2u);
}

}  // namespace
}  // namespace ht
