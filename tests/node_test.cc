// Tests for node page layouts and the intra-node kd-tree.

#include "core/node.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ht {
namespace {

TEST(DataNodeTest, CapacityFormula) {
  // 4-byte header, entries are 8 (id) + 4*dim bytes.
  EXPECT_EQ(DataNode::Capacity(2, 4096), (4096u - 4) / 16);
  EXPECT_EQ(DataNode::Capacity(64, 4096), (4096u - 4) / 264);
  EXPECT_EQ(DataNode::Capacity(16, 4096), (4096u - 4) / 72);
}

TEST(DataNodeTest, SerializeDeserializeRoundTrip) {
  DataNode node;
  Rng rng(103);
  for (int i = 0; i < 10; ++i) {
    DataEntry e;
    e.id = 1000 + i;
    for (int d = 0; d < 4; ++d) {
      e.vec.push_back(static_cast<float>(rng.NextDouble()));
    }
    node.entries.push_back(std::move(e));
  }
  std::vector<uint8_t> page(4096, 0xcc);
  node.Serialize(page.data(), page.size(), 4);
  EXPECT_EQ(PeekNodeKind(page.data()), NodeKind::kData);
  DataNode back = DataNode::Deserialize(page.data(), page.size(), 4)
                      .ValueOrDie();
  ASSERT_EQ(back.entries.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(back.entries[i].id, node.entries[i].id);
    EXPECT_EQ(back.entries[i].vec, node.entries[i].vec);
  }
}

TEST(DataNodeTest, ComputeLiveBr) {
  DataNode node;
  node.entries.push_back(DataEntry{0, {0.2f, 0.8f}});
  node.entries.push_back(DataEntry{1, {0.6f, 0.3f}});
  Box br = node.ComputeLiveBr(2);
  EXPECT_FLOAT_EQ(br.lo(0), 0.2f);
  EXPECT_FLOAT_EQ(br.hi(0), 0.6f);
  EXPECT_FLOAT_EQ(br.lo(1), 0.3f);
  EXPECT_FLOAT_EQ(br.hi(1), 0.8f);
}

TEST(DataNodeTest, DeserializeWrongKindFails) {
  std::vector<uint8_t> page(128, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  EXPECT_FALSE(DataNode::Deserialize(page.data(), page.size(), 2).ok());
}

/// Builds the kd-tree of the paper's Figure 1 example (node I1 with
/// children L1..L7 via internal nodes I2..I6, in a 6x6 space scaled to
/// [0,1]: we keep the paper's raw coordinates and a [0,6]^2 "unit" box).
struct Fig1 {
  IndexNode node;
  Box space = Box::FromBounds({0.0f, 0.0f}, {6.0f, 6.0f});
  Fig1() {
    // I4: dim=1(y), lsp=rsp=2 -> L1 (y<2), L2 (y>2) ... using the paper's
    // dim numbering: dim 1 = x (index 0), dim 2 = y (index 1).
    auto l1 = KdNode::MakeLeaf(11);
    auto l2 = KdNode::MakeLeaf(12);
    auto i4 = KdNode::MakeInternal(0, 2.0f, 2.0f, std::move(l1), std::move(l2));
    auto l3 = KdNode::MakeLeaf(13);
    // I2: dim=2(y idx 1), lsp=3, rsp=2 -> overlapping split.
    auto i2 = KdNode::MakeInternal(1, 3.0f, 2.0f, std::move(i4), std::move(l3));
    auto l4 = KdNode::MakeLeaf(14);
    auto l5 = KdNode::MakeLeaf(15);
    auto l6 = KdNode::MakeLeaf(16);
    auto l7 = KdNode::MakeLeaf(17);
    // I6: dim=2, lsp=1, rsp=1.
    auto i6 = KdNode::MakeInternal(1, 1.0f, 1.0f, std::move(l5), std::move(l6));
    // I5: dim=1 (x), lsp=5, rsp=4 -> overlapping.
    auto i5 = KdNode::MakeInternal(0, 5.0f, 4.0f, std::move(i6), std::move(l7));
    // I3: dim=2 (y), lsp=4, rsp=4.
    auto i3 = KdNode::MakeInternal(1, 4.0f, 4.0f, std::move(i5), std::move(l4));
    // I1 (root): dim=1 (x), lsp=3, rsp=3.
    node.level = 1;
    node.root = KdNode::MakeInternal(0, 3.0f, 3.0f, std::move(i2), std::move(i3));
  }
};

TEST(IndexNodeTest, Figure1BrMapping) {
  Fig1 f;
  std::vector<ChildRef> kids;
  f.node.CollectChildren(f.space, &kids);
  ASSERT_EQ(kids.size(), 7u);
  ASSERT_EQ(f.node.NumChildren(), 7u);
  ASSERT_EQ(f.node.NumKdNodes(), 13u);

  auto find = [&](PageId child) -> Box {
    for (auto& k : kids) {
      if (k.leaf->child == child) return k.kd_br;
    }
    ADD_FAILURE() << "child " << child << " not found";
    return Box::Empty(2);
  };
  // Paper: BR(L3) = BR(I2) ∩ {y >= rsp=2} = [0,3] x [2,6].
  Box l3 = find(13);
  EXPECT_FLOAT_EQ(l3.lo(0), 0.0f);
  EXPECT_FLOAT_EQ(l3.hi(0), 3.0f);
  EXPECT_FLOAT_EQ(l3.lo(1), 2.0f);
  EXPECT_FLOAT_EQ(l3.hi(1), 6.0f);
  // L1: x in [0,2], y in [0,3].
  Box l1 = find(11);
  EXPECT_FLOAT_EQ(l1.hi(0), 2.0f);
  EXPECT_FLOAT_EQ(l1.hi(1), 3.0f);
  // L2: x in [2,3], y in [0,3].
  Box l2 = find(12);
  EXPECT_FLOAT_EQ(l2.lo(0), 2.0f);
  EXPECT_FLOAT_EQ(l2.hi(1), 3.0f);
  // L4: I3's right: x in [3,6], y in [4,6].
  Box l4 = find(14);
  EXPECT_FLOAT_EQ(l4.lo(0), 3.0f);
  EXPECT_FLOAT_EQ(l4.lo(1), 4.0f);
  // L7: I5's right: x in [4,6], y in [0,4].
  Box l7 = find(17);
  EXPECT_FLOAT_EQ(l7.lo(0), 4.0f);
  EXPECT_FLOAT_EQ(l7.hi(1), 4.0f);
  // Overlap: L3 (I2 right) overlaps I4's region (I2 left, y<=3) in y [2,3].
  Box i4_left_region = find(11);
  EXPECT_TRUE(l3.Intersects(i4_left_region));
}

TEST(IndexNodeTest, UsedDims) {
  Fig1 f;
  auto dims = f.node.UsedDims(2);
  ASSERT_EQ(dims.size(), 2u);  // both x and y are used
  auto single = IndexNode{};
  single.level = 1;
  single.root = KdNode::MakeLeaf(5);
  EXPECT_TRUE(single.UsedDims(2).empty());
}

TEST(IndexNodeTest, SerializeDeserializeRoundTrip) {
  Fig1 f;
  std::vector<uint8_t> page(4096, 0xaa);
  const size_t sz = f.node.SerializedSize(/*els_in_page=*/false);
  EXPECT_LE(sz, page.size());
  f.node.Serialize(page.data(), page.size(), false, 0);
  EXPECT_EQ(PeekNodeKind(page.data()), NodeKind::kIndex);
  IndexNode back =
      IndexNode::Deserialize(page.data(), page.size(), false, 0).ValueOrDie();
  EXPECT_EQ(back.level, 1);
  EXPECT_EQ(back.NumChildren(), 7u);
  EXPECT_EQ(back.NumKdNodes(), 13u);
  // Same BR mapping after round trip.
  std::vector<ChildRef> kids_a, kids_b;
  f.node.CollectChildren(f.space, &kids_a);
  back.CollectChildren(f.space, &kids_b);
  ASSERT_EQ(kids_a.size(), kids_b.size());
  for (size_t i = 0; i < kids_a.size(); ++i) {
    EXPECT_EQ(kids_a[i].leaf->child, kids_b[i].leaf->child);
    EXPECT_EQ(kids_a[i].kd_br, kids_b[i].kd_br);
  }
}

TEST(IndexNodeTest, SerializeWithInPageEls) {
  IndexNode node;
  node.level = 2;
  const size_t code_bytes = 4;
  auto l = KdNode::MakeLeaf(7, ElsCode{1, 2, 3, 4});
  auto r = KdNode::MakeLeaf(8, ElsCode{9, 8, 7, 6});
  node.root = KdNode::MakeInternal(0, 0.5f, 0.4f, std::move(l), std::move(r));
  std::vector<uint8_t> page(512, 0);
  node.Serialize(page.data(), page.size(), true, code_bytes);
  IndexNode back =
      IndexNode::Deserialize(page.data(), page.size(), true, code_bytes)
          .ValueOrDie();
  ASSERT_EQ(back.NumChildren(), 2u);
  EXPECT_EQ(back.root->left->els, (ElsCode{1, 2, 3, 4}));
  EXPECT_EQ(back.root->right->els, (ElsCode{9, 8, 7, 6}));
  EXPECT_FLOAT_EQ(back.root->lsp, 0.5f);
  EXPECT_FLOAT_EQ(back.root->rsp, 0.4f);
}

TEST(IndexNodeTest, ElsBlobExtractAttachRoundTrip) {
  IndexNode node;
  node.level = 1;
  auto l = KdNode::MakeLeaf(7, ElsCode{1, 2});
  auto r = KdNode::MakeLeaf(8, ElsCode{3, 4});
  node.root = KdNode::MakeInternal(1, 0.5f, 0.5f, std::move(l), std::move(r));
  auto blob = node.ExtractElsBlob(2);
  ASSERT_EQ(blob.size(), 4u);
  // Wipe and reattach.
  node.root->left->els.clear();
  node.root->right->els.clear();
  node.AttachElsBlob(blob, 2);
  EXPECT_EQ(node.root->left->els, (ElsCode{1, 2}));
  EXPECT_EQ(node.root->right->els, (ElsCode{3, 4}));
  // Mismatched blob is ignored (stale sidecar safety).
  node.AttachElsBlob(std::vector<uint8_t>{9}, 2);
  EXPECT_EQ(node.root->left->els, (ElsCode{1, 2}));
}

TEST(IndexNodeTest, SerializedSizeMatchesWriterOffset) {
  Fig1 f;
  // 4-byte header + 6 internal * 15 + 7 leaves * 5 = 4 + 90 + 35 = 129.
  EXPECT_EQ(f.node.SerializedSize(false), 129u);
}

TEST(IndexNodeTest, DeserializeCorruptFails) {
  std::vector<uint8_t> page(64, 0);
  page[0] = static_cast<uint8_t>(NodeKind::kIndex);
  page[1] = 1;   // level
  page[2] = 0;   // kd count = 0 -> corruption
  page[3] = 0;
  EXPECT_FALSE(IndexNode::Deserialize(page.data(), page.size(), false, 0).ok());
}

size_t CountKd(const KdNode* n) {
  if (n == nullptr) return 0;
  if (n->IsLeaf()) return 1;
  return 1 + CountKd(n->left.get()) + CountKd(n->right.get());
}

TEST(KdNodeTest, CloneIsDeep) {
  Fig1 f;
  auto clone = f.node.root->Clone();
  EXPECT_EQ(CountKd(clone.get()), CountKd(f.node.root.get()));
  clone->lsp = 99.0f;
  EXPECT_FLOAT_EQ(f.node.root->lsp, 3.0f);
}

}  // namespace
}  // namespace ht
