// Cross-structure integration tests: every index structure must return
// exactly the same answers on a shared workload — the property that makes
// the benchmark comparisons meaningful.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/generators.h"
#include "data/workload.h"
#include "core/node.h"
#include "eval/harness.h"

namespace ht {
namespace {

struct Workbench {
  Dataset data;
  std::vector<Box> boxes;
  std::vector<std::vector<float>> centers;

  Workbench(int dataset, uint32_t dim, size_t n, uint64_t seed) {
    Rng rng(seed);
    switch (dataset) {
      case 0:
        data = GenUniform(n, dim, rng);
        break;
      case 1:
        data = GenClustered(n, dim, 5, 0.06, rng);
        break;
      default:
        data = GenColhist(n, dim, rng);
        data.NormalizeUnitCube();
    }
    centers = MakeQueryCenters(data, 12, rng);
    for (const auto& c : centers) {
      boxes.push_back(MakeBoxQuery(c, 0.25));
    }
  }
};

class CrossStructureTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(CrossStructureTest, AllStructuresAgree) {
  const int dataset = std::get<0>(GetParam());
  const uint32_t dim = std::get<1>(GetParam());
  Workbench wb(dataset, dim, 2500, 1300 + dataset * 17 + dim);
  BuildConfig config;
  config.page_size = 1024;

  const IndexKind kinds[] = {IndexKind::kHybrid,    IndexKind::kHybridVam,
                             IndexKind::kHybridNoEls, IndexKind::kSrTree,
                             IndexKind::kHbTree,    IndexKind::kKdbTree,
                             IndexKind::kRStarTree, IndexKind::kSeqScan};
  std::vector<IndexBundle> bundles;
  for (IndexKind kind : kinds) {
    auto b = BuildIndex(kind, wb.data, config);
    ASSERT_TRUE(b.ok()) << IndexKindName(kind) << ": "
                        << b.status().ToString();
    ASSERT_EQ(b.ValueOrDie().index->size(), wb.data.size())
        << IndexKindName(kind);
    bundles.push_back(std::move(b).ValueOrDie());
  }

  // Box queries: everyone must match brute force.
  for (size_t q = 0; q < wb.boxes.size(); ++q) {
    const auto expect = BruteForceBox(wb.data, wb.boxes[q]);
    for (auto& b : bundles) {
      auto got = b.index->SearchBox(wb.boxes[q]).ValueOrDie();
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, expect) << b.index->Name() << " box query " << q;
    }
  }

  // Distance-range queries (hB included — we implement them even though
  // the paper's code did not).
  L1Metric l1;
  for (size_t q = 0; q < 4; ++q) {
    const auto expect = BruteForceRange(wb.data, wb.centers[q], 0.35, l1);
    for (auto& b : bundles) {
      auto got_or = b.index->SearchRange(wb.centers[q], 0.35, l1);
      ASSERT_TRUE(got_or.ok()) << b.index->Name();
      auto got = std::move(got_or).ValueOrDie();
      std::sort(got.begin(), got.end());
      ASSERT_EQ(got, expect) << b.index->Name() << " range query " << q;
    }
  }

  // k-NN distances.
  L2Metric l2;
  for (size_t q = 0; q < 4; ++q) {
    const auto expect = BruteForceKnn(wb.data, wb.centers[q], 7, l2);
    for (auto& b : bundles) {
      auto got = b.index->SearchKnn(wb.centers[q], 7, l2).ValueOrDie();
      ASSERT_EQ(got.size(), expect.size()) << b.index->Name();
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].first, expect[i].first, 1e-9)
            << b.index->Name() << " knn query " << q << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DataAndDims, CrossStructureTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(4u, 8u, 16u)));

/// The access-count ordering that the paper's whole argument rests on must
/// show up on a high-dimensional workload: the hybrid tree reads fewer
/// pages than the hB-tree, and everyone reads fewer than the number of
/// pages a scan reads x10 (the random-access-cost equivalent).
TEST(CrossStructureTest, HybridReadsFewestPagesAtHighDim) {
  Workbench wb(2, 32, 6000, 4242);
  BuildConfig config;  // 4096-byte pages, 8-bit ELS
  const double scan_pages = std::ceil(
      static_cast<double>(wb.data.size()) /
      static_cast<double>(DataNode::Capacity(32, config.page_size)));

  auto measure = [&](IndexKind kind) {
    auto b = BuildIndex(kind, wb.data, config).ValueOrDie();
    uint64_t total = 0;
    for (const auto& box : wb.boxes) {
      b.index->pool().ResetStats();
      (void)b.index->SearchBox(box).ValueOrDie();
      total += b.index->pool().stats().logical_reads;
    }
    return static_cast<double>(total) / static_cast<double>(wb.boxes.size());
  };

  const double hybrid = measure(IndexKind::kHybrid);
  const double hybrid_noels = measure(IndexKind::kHybridNoEls);
  const double hb = measure(IndexKind::kHbTree);
  EXPECT_LT(hybrid, hb);
  EXPECT_LT(hybrid, hybrid_noels);  // ELS must pay for itself here
  EXPECT_LT(hybrid, 10.0 * scan_pages);
}

}  // namespace
}  // namespace ht
