// Unit tests for the LRU buffer pool.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ht {
namespace {

TEST(BufferPoolTest, NewThenFetchRoundTrip) {
  MemPagedFile file(256);
  BufferPool pool(&file, 4);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.data()[10] = 77;
    h.MarkDirty();
  }
  {
    PageHandle h = pool.Fetch(id).ValueOrDie();
    EXPECT_EQ(h.data()[10], 77);
  }
}

TEST(BufferPoolTest, DirtyPageSurvivesEviction) {
  MemPagedFile file(256);
  BufferPool pool(&file, 2);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.data()[0] = 5;
    h.MarkDirty();
  }
  // Evict by touching more pages than capacity.
  for (int i = 0; i < 4; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    h.MarkDirty();
  }
  EXPECT_LE(pool.cached_frames(), 2u);
  PageHandle h = pool.Fetch(id).ValueOrDie();
  EXPECT_EQ(h.data()[0], 5);
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(BufferPoolTest, PinnedFullPoolOverflowsDemandThenDrains) {
  MemPagedFile file(256);
  BufferPool pool(&file, 2);
  PageHandle pinned = pool.New().ValueOrDie();
  pinned.MarkDirty();
  PageHandle pinned2 = pool.New().ValueOrDie();
  pinned2.MarkDirty();
  // Pool full of pinned pages: a demand allocation is admitted over
  // capacity (never a spurious ResourceExhausted under concurrency) and
  // the overflow is counted.
  auto r = pool.New();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool.stats().pin_overflows, 1u);
  EXPECT_EQ(pool.cached_frames(), 3u);
  r->MarkDirty();
  // Once pins release, the next demand miss drains the shard back to its
  // capacity target before installing.
  r->Release();
  pinned.Release();
  pinned2.Release();
  PageHandle again = pool.New().ValueOrDie();
  again.MarkDirty();
  EXPECT_LE(pool.cached_frames(), 2u);
}

TEST(BufferPoolTest, LogicalReadsCountEveryFetch) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.MarkDirty();
  }
  pool.ResetStats();
  for (int i = 0; i < 5; ++i) {
    PageHandle h = pool.Fetch(id).ValueOrDie();
  }
  // All hits (unbounded pool), but each Fetch is a logical access —
  // the unit the paper's disk-access plots use.
  EXPECT_EQ(pool.stats().logical_reads, 5u);
  EXPECT_EQ(pool.stats().physical_reads, 0u);
}

TEST(BufferPoolTest, EvictAllMakesNextFetchPhysical) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.MarkDirty();
  }
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();
  PageHandle h = pool.Fetch(id).ValueOrDie();
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, FreeDropsFrame) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.MarkDirty();
  }
  ASSERT_TRUE(pool.Free(id).ok());
  EXPECT_EQ(pool.cached_frames(), 0u);
  EXPECT_FALSE(pool.Fetch(id).ok());  // unallocated in backing file
}

TEST(BufferPoolTest, FreePinnedPageRejected) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageHandle h = pool.New().ValueOrDie();
  EXPECT_TRUE(pool.Free(h.id()).IsInvalidArgument());
}

TEST(BufferPoolTest, MoveHandleTransfersPin) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageHandle a = pool.New().ValueOrDie();
  EXPECT_EQ(pool.pinned_frames(), 1u);
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  b.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, FlushWritesDirtyPagesToFile) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.data()[3] = 99;
    h.MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  Page raw(256);
  ASSERT_TRUE(file.Read(id, &raw).ok());
  EXPECT_EQ(raw.data()[3], 99);
}

TEST(BufferPoolTest, FlushAllWritesAllDirtyPagesInOneBatch) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);  // serial mode: one shard, one round trip
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    h.data()[0] = static_cast<uint8_t>(i + 1);
    h.MarkDirty();
    ids.push_back(h.id());
  }
  file.ResetStats();
  pool.ResetStats();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(file.stats().batch_writes, 1u);
  EXPECT_EQ(file.stats().writes, 5u);
  EXPECT_EQ(pool.stats().batch_writes, 1u);
  EXPECT_EQ(pool.stats().writes, 5u);
  for (size_t i = 0; i < ids.size(); ++i) {
    Page raw(256);
    ASSERT_TRUE(file.Read(ids[i], &raw).ok());
    EXPECT_EQ(raw.data()[0], static_cast<uint8_t>(i + 1));
  }
  // Dirty flags were cleared: a second flush issues no I/O at all.
  file.ResetStats();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(file.stats().writes, 0u);
  EXPECT_EQ(file.stats().batch_writes, 0u);
}

TEST(BufferPoolTest, FlushAllSingleDirtyPageUsesPlainWrite) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  {
    PageHandle h = pool.New().ValueOrDie();
    h.MarkDirty();
  }
  file.ResetStats();
  ASSERT_TRUE(pool.FlushAll().ok());
  // A singleton dirty set degrades to Write — no batch setup cost.
  EXPECT_EQ(file.stats().writes, 1u);
  EXPECT_EQ(file.stats().batch_writes, 0u);
}

TEST(BufferPoolTest, FlushAllExceptThenFlushPageOrdersSkippedPageLast) {
  // The two-phase flush HybridTree uses: everything except the metadata
  // page first, then the metadata page by itself.
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId meta, a, b;
  {
    PageHandle h = pool.New().ValueOrDie();
    meta = h.id();
    h.data()[0] = 7;
    h.MarkDirty();
  }
  {
    PageHandle h = pool.New().ValueOrDie();
    a = h.id();
    h.data()[0] = 8;
    h.MarkDirty();
  }
  {
    PageHandle h = pool.New().ValueOrDie();
    b = h.id();
    h.data()[0] = 9;
    h.MarkDirty();
  }
  file.ResetStats();
  ASSERT_TRUE(pool.FlushAllExcept(meta).ok());
  EXPECT_EQ(file.stats().writes, 2u);
  Page raw(256);
  ASSERT_TRUE(file.Read(a, &raw).ok());
  EXPECT_EQ(raw.data()[0], 8);
  ASSERT_TRUE(file.Read(b, &raw).ok());
  EXPECT_EQ(raw.data()[0], 9);
  // The skipped page is still only in the pool.
  ASSERT_TRUE(file.Read(meta, &raw).ok());
  EXPECT_EQ(raw.data()[0], 0);
  ASSERT_TRUE(pool.FlushPage(meta).ok());
  ASSERT_TRUE(file.Read(meta, &raw).ok());
  EXPECT_EQ(raw.data()[0], 7);
  // FlushPage on a clean or uncached page is a no-op.
  file.ResetStats();
  ASSERT_TRUE(pool.FlushPage(meta).ok());
  ASSERT_TRUE(pool.FlushPage(static_cast<PageId>(9999)).ok());
  EXPECT_EQ(file.stats().writes, 0u);
}

TEST(BufferPoolTest, FlushAllBatchesPerShardInConcurrentMode) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  ASSERT_TRUE(pool.SetConcurrentMode(true).ok());
  const size_t kPages = 48;
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    h.data()[0] = static_cast<uint8_t>(i + 1);
    h.MarkDirty();
    ids.push_back(h.id());
  }
  file.ResetStats();
  ASSERT_TRUE(pool.FlushAll().ok());
  // Every dirty page goes out, at most one round trip per shard (16
  // shards) rather than one per page.
  EXPECT_EQ(file.stats().writes, kPages);
  EXPECT_LE(file.stats().batch_writes, 16u);
  EXPECT_GE(file.stats().batch_writes, 1u);
  for (size_t i = 0; i < kPages; ++i) {
    Page raw(256);
    ASSERT_TRUE(file.Read(ids[i], &raw).ok());
    EXPECT_EQ(raw.data()[0], static_cast<uint8_t>(i + 1));
  }
}

TEST(BufferPoolTest, ConcurrentReadersDuringFlushAll) {
  // TSAN target: FlushAll's per-shard collect-and-batch runs while reader
  // threads fetch the same pages. Readers never mark dirty, so the only
  // contention is shard locks and LRU state.
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  ASSERT_TRUE(pool.SetConcurrentMode(true).ok());
  const size_t kPages = 32;
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    h.data()[0] = static_cast<uint8_t>(i + 1);
    h.MarkDirty();
    ids.push_back(h.id());
  }

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint32_t state = 0x9e3779b9u * static_cast<uint32_t>(t + 1);
      for (int i = 0; i < 300; ++i) {
        state = state * 1664525u + 1013904223u;
        const size_t k = state % kPages;
        PageHandle h = pool.Fetch(ids[k]).ValueOrDie();
        EXPECT_EQ(h.data()[0], static_cast<uint8_t>(k + 1));
      }
    });
  }
  std::thread flusher([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pool.FlushAll().ok());
    }
  });
  for (auto& t : readers) t.join();
  flusher.join();
  for (size_t i = 0; i < kPages; ++i) {
    Page raw(256);
    ASSERT_TRUE(file.Read(ids[i], &raw).ok());
    EXPECT_EQ(raw.data()[0], static_cast<uint8_t>(i + 1));
  }
}

// --- FetchMany / Prefetch --------------------------------------------------

/// Allocates `n` pages directly in `file`, stamping page i's first byte
/// with `i + 1` so tests can verify contents after a batch fetch.
std::vector<PageId> AllocStamped(MemPagedFile& file, size_t n) {
  std::vector<PageId> ids;
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(file.Allocate().ValueOrDie());
    Page p(file.page_size());
    p.data()[0] = static_cast<uint8_t>(i + 1);
    EXPECT_TRUE(file.Write(ids.back(), p).ok());
  }
  return ids;
}

TEST(BufferPoolTest, FetchManyMissesUseOneBatchRead) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 4);
  BufferPool pool(&file, 0);
  file.ResetStats();

  std::vector<PageHandle> handles;
  ASSERT_TRUE(pool.FetchMany(ids, &handles).ok());
  ASSERT_EQ(handles.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(handles[i].id(), ids[i]);
    EXPECT_EQ(handles[i].data()[0], static_cast<uint8_t>(i + 1));
  }
  EXPECT_EQ(pool.pinned_frames(), ids.size());
  // One batched round trip for all four misses; logical accounting is
  // identical to four separate Fetch calls.
  EXPECT_EQ(file.stats().batch_reads, 1u);
  EXPECT_EQ(pool.stats().logical_reads, 4u);
  EXPECT_EQ(pool.stats().physical_reads, 4u);
  EXPECT_EQ(pool.stats().batch_reads, 1u);
  handles.clear();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, FetchManyMixedHitsAndMisses) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 3);
  BufferPool pool(&file, 0);
  { PageHandle warm = pool.Fetch(ids[0]).ValueOrDie(); }
  pool.ResetStats();
  file.ResetStats();

  std::vector<PageHandle> handles;
  ASSERT_TRUE(pool.FetchMany(ids, &handles).ok());
  EXPECT_EQ(pool.stats().logical_reads, 3u);
  EXPECT_EQ(pool.stats().physical_reads, 2u);  // ids[0] was already cached
  EXPECT_EQ(file.stats().batch_reads, 1u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(handles[i].data()[0], static_cast<uint8_t>(i + 1));
  }
}

TEST(BufferPoolTest, FetchManyDuplicateIdsPinEachOccurrence) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 2);
  BufferPool pool(&file, 0);
  file.ResetStats();

  std::vector<PageId> req = {ids[0], ids[0], ids[1], ids[0]};
  std::vector<PageHandle> handles;
  ASSERT_TRUE(pool.FetchMany(req, &handles).ok());
  ASSERT_EQ(handles.size(), 4u);
  EXPECT_EQ(handles[0].data()[0], 1);
  EXPECT_EQ(handles[1].data()[0], 1);
  EXPECT_EQ(handles[2].data()[0], 2);
  EXPECT_EQ(handles[3].data()[0], 1);
  // Two distinct frames, each duplicate holds its own pin on the shared one.
  EXPECT_EQ(pool.cached_frames(), 2u);
  EXPECT_EQ(pool.stats().logical_reads, 4u);
  EXPECT_EQ(pool.stats().physical_reads, 2u);  // the file read is deduped
  handles.pop_back();
  EXPECT_EQ(pool.pinned_frames(), 2u);  // ids[0] still pinned twice
}

TEST(BufferPoolTest, FetchManyErrorRetainsNoPins) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 2);
  BufferPool pool(&file, 0);

  std::vector<PageId> bad = {ids[0], static_cast<PageId>(9999), ids[1]};
  std::vector<PageHandle> handles;
  EXPECT_FALSE(pool.FetchMany(bad, &handles).ok());
  EXPECT_TRUE(handles.empty());
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, FetchManyOverflowsCapacityWhileBatchIsPinned) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 4);
  std::vector<PageId> three = {ids[0], ids[1], ids[2]};
  BufferPool pool(&file, 2);

  // All three pages are pinned simultaneously: the batch exceeds the
  // capacity target, so the last install is a counted pin overflow
  // rather than a batch failure.
  std::vector<PageHandle> handles;
  ASSERT_TRUE(pool.FetchMany(three, &handles).ok());
  EXPECT_EQ(handles.size(), 3u);
  for (const PageHandle& h : handles) EXPECT_TRUE(h.valid());
  EXPECT_EQ(pool.pinned_frames(), 3u);
  EXPECT_EQ(pool.stats().pin_overflows, 1u);
  // Releasing the batch lets the next demand miss drain the shard back
  // under its capacity target before installing.
  handles.clear();
  PageHandle h = pool.Fetch(ids[3]).ValueOrDie();
  EXPECT_LE(pool.cached_frames(), 2u);
}

TEST(BufferPoolTest, PrefetchFillsUnpinnedWithoutLogicalReads) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 3);
  BufferPool pool(&file, 0);
  file.ResetStats();

  pool.Prefetch(ids);
  // Frames are resident but unpinned; nothing counted as a logical access.
  EXPECT_EQ(pool.cached_frames(), 3u);
  EXPECT_EQ(pool.pinned_frames(), 0u);
  for (PageId id : ids) EXPECT_TRUE(pool.Cached(id));
  EXPECT_EQ(pool.stats().logical_reads, 0u);
  EXPECT_EQ(pool.stats().physical_reads, 3u);
  EXPECT_EQ(pool.stats().prefetch_issued, 3u);
  EXPECT_EQ(pool.stats().prefetch_hits, 0u);
  EXPECT_EQ(file.stats().batch_reads, 1u);
}

TEST(BufferPoolTest, PrefetchHitCountedOncePerPrefetchedFrame) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 2);
  BufferPool pool(&file, 0);
  pool.Prefetch(ids);
  file.ResetStats();

  {
    PageHandle h = pool.Fetch(ids[0]).ValueOrDie();
    EXPECT_EQ(h.data()[0], 1);
  }
  { PageHandle again = pool.Fetch(ids[0]).ValueOrDie(); }
  // The first pin of a prefetched frame is the hit; re-fetching it is an
  // ordinary cache hit.
  EXPECT_EQ(pool.stats().prefetch_hits, 1u);
  EXPECT_EQ(pool.stats().logical_reads, 2u);
  EXPECT_EQ(file.stats().physical_reads, 0u);  // prefetch already paid it
}

TEST(BufferPoolTest, PrefetchSkipsCachedPages) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 2);
  BufferPool pool(&file, 0);
  { PageHandle warm = pool.Fetch(ids[0]).ValueOrDie(); }
  pool.ResetStats();
  file.ResetStats();

  pool.Prefetch(ids);
  EXPECT_EQ(pool.stats().prefetch_issued, 1u);  // only the miss
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  // Prefetching an all-cached batch is a no-op, not an empty ReadBatch.
  file.ResetStats();
  pool.ResetStats();
  pool.Prefetch(ids);
  EXPECT_EQ(pool.stats().prefetch_issued, 0u);
  EXPECT_EQ(file.stats().batch_reads, 0u);
}

TEST(BufferPoolTest, PrefetchNeverEvictsPinnedFrames) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 4);
  BufferPool pool(&file, 2);
  PageHandle a = pool.Fetch(ids[0]).ValueOrDie();
  PageHandle b = pool.Fetch(ids[1]).ValueOrDie();

  // Pool is full of pins: the prefetch reads are silently dropped.
  std::vector<PageId> rest = {ids[2], ids[3]};
  pool.Prefetch(rest);
  EXPECT_EQ(pool.cached_frames(), 2u);
  EXPECT_TRUE(pool.Cached(ids[0]));
  EXPECT_TRUE(pool.Cached(ids[1]));
  EXPECT_FALSE(pool.Cached(ids[2]));
  EXPECT_FALSE(pool.Cached(ids[3]));
  a.Release();
  b.Release();
  // With room again the same prefetch lands.
  pool.Prefetch(rest);
  EXPECT_TRUE(pool.Cached(ids[2]) || pool.Cached(ids[3]));
}

TEST(BufferPoolTest, FetchManyCountsPrefetchHits) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 2);
  BufferPool pool(&file, 0);
  pool.Prefetch(ids);
  file.ResetStats();

  std::vector<PageHandle> handles;
  ASSERT_TRUE(pool.FetchMany(ids, &handles).ok());
  EXPECT_EQ(pool.stats().prefetch_hits, 2u);
  EXPECT_EQ(file.stats().physical_reads, 0u);
}

TEST(BufferPoolTest, AsyncPrefetchFillsViaExecutor) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 3);
  BufferPool pool(&file, 0);
  ASSERT_TRUE(pool.SetConcurrentMode(true).ok());

  std::mutex mu;
  std::vector<std::thread> workers;
  pool.SetPrefetchExecutor([&](std::function<void()> fill) {
    std::lock_guard<std::mutex> g(mu);
    workers.emplace_back(std::move(fill));
    return true;
  });
  pool.Prefetch(ids);
  // Detaching blocks until the background fill has drained.
  pool.SetPrefetchExecutor(nullptr);
  for (auto& t : workers) t.join();

  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE(pool.Cached(ids[i]));
    PageHandle h = pool.Fetch(ids[i]).ValueOrDie();
    EXPECT_EQ(h.data()[0], static_cast<uint8_t>(i + 1));
  }
  IoStats s = pool.StatsSnapshot();
  EXPECT_EQ(s.prefetch_issued, 3u);
  EXPECT_EQ(s.prefetch_hits, 3u);
  EXPECT_EQ(s.logical_reads, 3u);  // only the Fetches, never the fill
}

TEST(BufferPoolTest, FetchWaitsForInflightFillInsteadOfRereading) {
  MemPagedFile file(256);
  std::vector<PageId> ids = AllocStamped(file, 1);
  BufferPool pool(&file, 0);
  ASSERT_TRUE(pool.SetConcurrentMode(true).ok());

  // An executor that parks the fill instead of running it, so the page
  // stays in flight until this test chooses to complete it.
  std::function<void()> parked;
  pool.SetPrefetchExecutor([&](std::function<void()> fill) {
    parked = std::move(fill);
    return true;
  });
  pool.Prefetch(ids);
  ASSERT_TRUE(parked != nullptr);
  file.ResetStats();

  std::thread reader([&] {
    PageHandle h = pool.Fetch(ids[0]).ValueOrDie();
    EXPECT_EQ(h.data()[0], 1);
  });
  // Let the reader reach the in-flight wait, then complete the fill.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  parked();
  reader.join();
  // The reader reused the prefetched fill: exactly one physical read.
  EXPECT_EQ(file.stats().physical_reads, 1u);
  EXPECT_EQ(pool.StatsSnapshot().prefetch_hits, 1u);
  pool.SetPrefetchExecutor(nullptr);
}

TEST(BufferPoolTest, ConcurrentPrefetchAndFetchStress) {
  // TSAN target: readers fetch while background fills install frames.
  MemPagedFile file(256);
  const size_t kPages = 64;
  std::vector<PageId> ids = AllocStamped(file, kPages);
  BufferPool pool(&file, 32);
  ASSERT_TRUE(pool.SetConcurrentMode(true).ok());

  std::mutex mu;
  std::vector<std::thread> fills;
  pool.SetPrefetchExecutor([&](std::function<void()> fill) {
    std::lock_guard<std::mutex> g(mu);
    fills.emplace_back(std::move(fill));
    return true;
  });

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      uint32_t state = 0x9e3779b9u * static_cast<uint32_t>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        state = state * 1664525u + 1013904223u;
        const size_t base = state % kPages;
        PageId batch[4];
        for (size_t j = 0; j < 4; ++j) batch[j] = ids[(base + j) % kPages];
        if (i % 3 == 0) pool.Prefetch(batch);
        auto r = pool.Fetch(ids[(base + 2) % kPages]);
        ASSERT_TRUE(r.ok());
        PageHandle h = std::move(r).ValueOrDie();
        EXPECT_EQ(h.data()[0],
                  static_cast<uint8_t>(((base + 2) % kPages) + 1));
      }
    });
  }
  for (auto& t : readers) t.join();
  pool.SetPrefetchExecutor(nullptr);
  for (auto& t : fills) t.join();
  ASSERT_TRUE(pool.SetConcurrentMode(false).ok());

  // Every page still reads back correctly after the storm.
  for (size_t i = 0; i < kPages; ++i) {
    PageHandle h = pool.Fetch(ids[i]).ValueOrDie();
    EXPECT_EQ(h.data()[0], static_cast<uint8_t>(i + 1));
  }
}

// --- debug pin tracking ------------------------------------------------------

TEST(PinTrackingTest, AssertNoPinsOkWhenAllReleased) {
  MemPagedFile file(256);
  BufferPool pool(&file, 4);
  pool.SetPinTracking(true);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
  }
  {
    PageHandle h = pool.Fetch(id).ValueOrDie();
  }
  EXPECT_TRUE(pool.AssertNoPins().ok());
}

TEST(PinTrackingTest, LeakIsAttributedToTheFetchCallSite) {
  MemPagedFile file(256);
  BufferPool pool(&file, 4);
  pool.SetPinTracking(true);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
  }
  PageHandle leaked = pool.Fetch(id).ValueOrDie();  // held across the check
  Status s = pool.AssertNoPins();
  ASSERT_FALSE(s.ok());
  // The message must carry the pin count, this file, and the page id.
  EXPECT_NE(s.message().find("1 pin(s)"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("buffer_pool_test"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find(std::to_string(id)), std::string::npos)
      << s.ToString();
  leaked.Release();
  EXPECT_TRUE(pool.AssertNoPins().ok());
}

TEST(PinTrackingTest, FetchManyAndMovesKeepTheRegistryExact) {
  MemPagedFile file(256);
  BufferPool pool(&file, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    ids.push_back(h.id());
  }
  pool.SetPinTracking(true);
  std::vector<PageHandle> handles;
  ASSERT_TRUE(pool.FetchMany(ids, &handles).ok());
  EXPECT_FALSE(pool.AssertNoPins().ok());
  // Moving a handle must transfer (not duplicate) its registration.
  PageHandle moved = std::move(handles[1]);
  handles.clear();
  Status s = pool.AssertNoPins();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("1 pin(s)"), std::string::npos) << s.ToString();
  moved.Release();
  EXPECT_TRUE(pool.AssertNoPins().ok());
}

TEST(PinTrackingTest, UntrackedLeakStillDetected) {
  MemPagedFile file(256);
  BufferPool pool(&file, 4);
  pool.SetPinTracking(false);
  PageHandle h = pool.New().ValueOrDie();
  Status s = pool.AssertNoPins();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("SetPinTracking"), std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace ht
