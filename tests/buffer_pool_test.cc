// Unit tests for the LRU buffer pool.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

namespace ht {
namespace {

TEST(BufferPoolTest, NewThenFetchRoundTrip) {
  MemPagedFile file(256);
  BufferPool pool(&file, 4);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.data()[10] = 77;
    h.MarkDirty();
  }
  {
    PageHandle h = pool.Fetch(id).ValueOrDie();
    EXPECT_EQ(h.data()[10], 77);
  }
}

TEST(BufferPoolTest, DirtyPageSurvivesEviction) {
  MemPagedFile file(256);
  BufferPool pool(&file, 2);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.data()[0] = 5;
    h.MarkDirty();
  }
  // Evict by touching more pages than capacity.
  for (int i = 0; i < 4; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    h.MarkDirty();
  }
  EXPECT_LE(pool.cached_frames(), 2u);
  PageHandle h = pool.Fetch(id).ValueOrDie();
  EXPECT_EQ(h.data()[0], 5);
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  MemPagedFile file(256);
  BufferPool pool(&file, 2);
  PageHandle pinned = pool.New().ValueOrDie();
  pinned.MarkDirty();
  PageHandle pinned2 = pool.New().ValueOrDie();
  pinned2.MarkDirty();
  // Pool full of pinned pages: next allocation must fail.
  auto r = pool.New();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  pinned.Release();
  EXPECT_TRUE(pool.New().ok());
}

TEST(BufferPoolTest, LogicalReadsCountEveryFetch) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.MarkDirty();
  }
  pool.ResetStats();
  for (int i = 0; i < 5; ++i) {
    PageHandle h = pool.Fetch(id).ValueOrDie();
  }
  // All hits (unbounded pool), but each Fetch is a logical access —
  // the unit the paper's disk-access plots use.
  EXPECT_EQ(pool.stats().logical_reads, 5u);
  EXPECT_EQ(pool.stats().physical_reads, 0u);
}

TEST(BufferPoolTest, EvictAllMakesNextFetchPhysical) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.MarkDirty();
  }
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();
  PageHandle h = pool.Fetch(id).ValueOrDie();
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, FreeDropsFrame) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.MarkDirty();
  }
  ASSERT_TRUE(pool.Free(id).ok());
  EXPECT_EQ(pool.cached_frames(), 0u);
  EXPECT_FALSE(pool.Fetch(id).ok());  // unallocated in backing file
}

TEST(BufferPoolTest, FreePinnedPageRejected) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageHandle h = pool.New().ValueOrDie();
  EXPECT_TRUE(pool.Free(h.id()).IsInvalidArgument());
}

TEST(BufferPoolTest, MoveHandleTransfersPin) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageHandle a = pool.New().ValueOrDie();
  EXPECT_EQ(pool.pinned_frames(), 1u);
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  b.Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPoolTest, FlushWritesDirtyPagesToFile) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.data()[3] = 99;
    h.MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  Page raw(256);
  ASSERT_TRUE(file.Read(id, &raw).ok());
  EXPECT_EQ(raw.data()[3], 99);
}

}  // namespace
}  // namespace ht
