// Unit tests for the little-endian page codec.

#include "common/codec.h"

#include <gtest/gtest.h>

namespace ht {
namespace {

TEST(CodecTest, RoundTripAllWidths) {
  uint8_t buf[64];
  Writer w(buf, sizeof(buf));
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI16(-12345);
  w.PutI32(-123456789);
  w.PutI64(-1234567890123456789LL);
  w.PutF32(3.14159f);
  w.PutF64(-2.718281828459045);
  const size_t written = w.offset();

  Reader r(buf, written);
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU16(), 0xbeef);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI16(), -12345);
  EXPECT_EQ(r.GetI32(), -123456789);
  EXPECT_EQ(r.GetI64(), -1234567890123456789LL);
  EXPECT_FLOAT_EQ(r.GetF32(), 3.14159f);
  EXPECT_DOUBLE_EQ(r.GetF64(), -2.718281828459045);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CodecTest, LittleEndianLayout) {
  uint8_t buf[4];
  Writer w(buf, sizeof(buf));
  w.PutU32(0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(CodecTest, ShortReadIsCorruptionNotCrash) {
  uint8_t buf[2] = {1, 2};
  Reader r(buf, sizeof(buf));
  EXPECT_EQ(r.GetU32(), 0u);  // zero-filled on failure
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(CodecTest, ShortReadIsSticky) {
  uint8_t buf[6] = {0};
  Reader r(buf, sizeof(buf));
  r.GetU32();
  EXPECT_TRUE(r.ok());
  r.GetU32();  // fails
  EXPECT_FALSE(r.ok());
  // Even though 2 bytes remain, subsequent reads keep failing.
  EXPECT_EQ(r.GetU16(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, BytesRoundTrip) {
  uint8_t buf[16];
  const uint8_t src[5] = {9, 8, 7, 6, 5};
  Writer w(buf, sizeof(buf));
  w.PutBytes(src, sizeof(src));
  uint8_t dst[5] = {0};
  Reader r(buf, sizeof(buf));
  r.GetBytes(dst, sizeof(dst));
  EXPECT_TRUE(std::equal(src, src + 5, dst));
}

}  // namespace
}  // namespace ht
