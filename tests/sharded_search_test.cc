// Scatter-gather correctness for the serving layer's ShardedIndex: for
// every tested shard count, partitioner, and pool size the merged
// box/range/k-NN answers must be IDENTICAL to a single unsharded tree
// over the same data, canonicalized the same way (box/range ids
// ascending; k-NN by (distance, id) ascending — the ShardedIndex output
// contract). Also covers k-NN tie-breaking at equal distances (canonical
// spec: BruteForceKnn, which ties by id), deadline/cancel propagation,
// empty shards, and a multi-client concurrent stress that the CI TSAN
// job runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"
#include "exec/thread_pool.h"
#include "geometry/metrics.h"
#include "serve/partition.h"
#include "serve/sharded_index.h"
#include "storage/paged_file.h"

namespace ht {
namespace {

constexpr uint32_t kDim = 16;
constexpr size_t kPoints = 2500;
constexpr size_t kQueries = 25;
constexpr size_t kK = 10;

/// Canonical k-NN ordering: ascending (distance, id).
void Canonicalize(std::vector<std::pair<double, uint64_t>>* knn) {
  std::sort(knn->begin(), knn->end());
}

class ShardedSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    data_ = GenFourier(kPoints, kDim, rng);
    opts_.dim = kDim;

    // Unsharded reference tree (the ground truth the scatter must match).
    file_ = std::make_unique<MemPagedFile>(opts_.page_size);
    auto tree_r = BulkLoad(opts_, file_.get(), data_, BulkLoadOptions{});
    ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
    reference_ = std::move(tree_r).ValueUnsafe();

    const double side = CalibrateBoxSide(data_, 0.01, 10, rng);
    radius_ = CalibrateRangeRadius(data_, metric_, 0.01, 10, rng);
    auto centers = MakeQueryCenters(data_, kQueries, rng);
    for (const auto& c : centers) {
      boxes_.push_back(MakeBoxQuery(c, side));
      centers_.push_back(std::vector<float>(c.begin(), c.end()));
    }

    for (size_t i = 0; i < kQueries; ++i) {
      auto box = reference_->SearchBox(boxes_[i]).ValueOrDie();
      std::sort(box.begin(), box.end());
      ref_box_.push_back(std::move(box));
      auto range =
          reference_->SearchRange(centers_[i], radius_, metric_).ValueOrDie();
      std::sort(range.begin(), range.end());
      ref_range_.push_back(std::move(range));
      auto knn =
          reference_->SearchKnn(centers_[i], kK, metric_).ValueOrDie();
      Canonicalize(&knn);
      ref_knn_.push_back(std::move(knn));
    }
  }

  /// Runs the full workload against `index` and asserts canonical
  /// equality with the unsharded reference.
  void ExpectIdentical(const ShardedIndex& index, const std::string& label) {
    ExecOptions exec;
    std::vector<uint64_t> ids;
    std::vector<std::pair<double, uint64_t>> knn;
    for (size_t i = 0; i < kQueries; ++i) {
      ASSERT_TRUE(index.SearchBox(boxes_[i], exec, &ids).ok()) << label;
      EXPECT_EQ(ids, ref_box_[i]) << label << " box query " << i;
      ASSERT_TRUE(
          index.SearchRange(centers_[i], radius_, metric_, exec, &ids).ok())
          << label;
      EXPECT_EQ(ids, ref_range_[i]) << label << " range query " << i;
      ASSERT_TRUE(
          index.SearchKnn(centers_[i], kK, metric_, exec, &knn).ok())
          << label;
      EXPECT_EQ(knn, ref_knn_[i]) << label << " knn query " << i;
    }
  }

  Dataset data_;
  HybridTreeOptions opts_;
  std::unique_ptr<MemPagedFile> file_;
  std::unique_ptr<HybridTree> reference_;
  L2Metric metric_;
  std::vector<Box> boxes_;
  std::vector<std::vector<float>> centers_;
  double radius_ = 0.0;
  std::vector<std::vector<uint64_t>> ref_box_;
  std::vector<std::vector<uint64_t>> ref_range_;
  std::vector<std::vector<std::pair<double, uint64_t>>> ref_knn_;
};

TEST_F(ShardedSearchTest, PartitionersCoverEveryRowExactlyOnce) {
  for (ShardPartitioner p :
       {ShardPartitioner::kKdRegion, ShardPartitioner::kHash}) {
    for (size_t shards : {size_t{1}, size_t{3}, size_t{8}}) {
      auto parts_r = PartitionRows(data_, opts_, p, shards);
      ASSERT_TRUE(parts_r.ok());
      const auto& parts = parts_r.ValueOrDie();
      ASSERT_EQ(parts.size(), shards);
      std::vector<uint32_t> all;
      for (const auto& part : parts) {
        all.insert(all.end(), part.begin(), part.end());
      }
      std::sort(all.begin(), all.end());
      ASSERT_EQ(all.size(), data_.size());
      for (size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i], static_cast<uint32_t>(i));
      }
      // Determinism: the assignment is a pure function of the data.
      auto again = PartitionRows(data_, opts_, p, shards);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(parts, again.ValueOrDie());
    }
  }
}

TEST_F(ShardedSearchTest, IdenticalAcrossShardCountsPartitionersAndThreads) {
  for (ShardPartitioner p :
       {ShardPartitioner::kKdRegion, ShardPartitioner::kHash}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                          size_t{7}}) {
      ShardedIndexOptions so;
      so.shards = shards;
      so.partitioner = p;
      auto index_r = ShardedIndex::Build(opts_, so, data_, nullptr);
      ASSERT_TRUE(index_r.ok()) << index_r.status().ToString();
      auto index = std::move(index_r).ValueUnsafe();
      const std::string base =
          (p == ShardPartitioner::kKdRegion ? "kd" : "hash") + std::string("/") +
          std::to_string(shards) + " shards";

      // Serial in-caller scatter (null pool)...
      ExpectIdentical(*index, base + "/inline");
      // ...and every pool size, over the same built index.
      for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
        ThreadPool pool(threads);
        index->set_pool(&pool);
        ExpectIdentical(*index, base + "/" + std::to_string(threads) +
                                    " threads");
        index->set_pool(nullptr);
      }
    }
  }
}

TEST_F(ShardedSearchTest, KnnTieBreakingAtEqualDistancesIsById) {
  // Every point triplicated: distances tie in groups of three, including
  // across the k-th boundary. The canonical answer — and the ShardedIndex
  // contract — is BruteForceKnn's: ascending (distance, id), the k
  // smallest pairs. Must hold at every shard count / partitioner and be
  // independent of the pool interleaving.
  Rng rng(23);
  Dataset base = GenFourier(400, kDim, rng);
  Dataset tied(kDim, 3 * base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    for (size_t copy = 0; copy < 3; ++copy) {
      auto row = base.Row(i);
      std::copy(row.begin(), row.end(),
                tied.MutableRow(3 * i + copy).begin());
    }
  }
  auto centers = MakeQueryCenters(tied, 10, rng);
  ThreadPool pool(4);
  for (ShardPartitioner p :
       {ShardPartitioner::kKdRegion, ShardPartitioner::kHash}) {
    for (size_t shards : {size_t{1}, size_t{3}, size_t{4}}) {
      ShardedIndexOptions so;
      so.shards = shards;
      so.partitioner = p;
      auto index_r = ShardedIndex::Build(opts_, so, tied, &pool);
      ASSERT_TRUE(index_r.ok()) << index_r.status().ToString();
      auto index = std::move(index_r).ValueUnsafe();
      std::vector<std::pair<double, uint64_t>> knn;
      for (const auto& c : centers) {
        // k = 7 deliberately lands mid-triplet so the boundary tie is
        // resolved by global id.
        ASSERT_TRUE(index->SearchKnn(c, 7, metric_, ExecOptions{}, &knn).ok());
        auto want = BruteForceKnn(tied, c, 7, metric_);
        EXPECT_EQ(knn, want) << "shards=" << shards;
      }
    }
  }
}

TEST_F(ShardedSearchTest, DeadlineBeforeScatterExpiresWholeRequest) {
  ShardedIndexOptions so;
  so.shards = 4;
  auto index = std::move(ShardedIndex::Build(opts_, so, data_, nullptr))
                   .ValueUnsafe();
  ExecOptions exec;
  exec.deadline_seconds = 1e-12;  // expired before any shard task starts
  std::vector<uint64_t> ids;
  Status st = index->SearchBox(boxes_[0], exec, &ids);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  std::vector<std::pair<double, uint64_t>> knn;
  st = index->SearchKnn(centers_[0], kK, metric_, exec, &knn);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
}

TEST_F(ShardedSearchTest, CancelFlagCancelsRequest) {
  ShardedIndexOptions so;
  so.shards = 2;
  auto index = std::move(ShardedIndex::Build(opts_, so, data_, nullptr))
                   .ValueUnsafe();
  std::atomic<bool> cancel{true};
  ExecOptions exec;
  exec.cancel = &cancel;
  std::vector<uint64_t> ids;
  Status st = index->SearchBox(boxes_[0], exec, &ids);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

TEST_F(ShardedSearchTest, TinyDatasetsLeaveEmptyShardsServable) {
  Dataset tiny(kDim, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (uint32_t d = 0; d < kDim; ++d) {
      tiny.MutableRow(i)[d] = 0.25f * static_cast<float>(i + 1);
    }
  }
  for (ShardPartitioner p :
       {ShardPartitioner::kKdRegion, ShardPartitioner::kHash}) {
    ShardedIndexOptions so;
    so.shards = 5;  // more shards than rows: some must be empty
    so.partitioner = p;
    auto index_r = ShardedIndex::Build(opts_, so, tiny, nullptr);
    ASSERT_TRUE(index_r.ok()) << index_r.status().ToString();
    auto index = std::move(index_r).ValueUnsafe();
    std::vector<uint64_t> ids;
    ASSERT_TRUE(
        index->SearchBox(Box::UnitCube(kDim), ExecOptions{}, &ids).ok());
    EXPECT_EQ(ids, (std::vector<uint64_t>{0, 1, 2}));
    std::vector<std::pair<double, uint64_t>> knn;
    ASSERT_TRUE(index->SearchKnn(tiny.Row(0), 10, metric_, ExecOptions{},
                                 &knn)
                    .ok());
    EXPECT_EQ(knn.size(), 3u);  // k > n returns everything
    EXPECT_EQ(knn[0].second, 0u);
  }
}

TEST_F(ShardedSearchTest, ServingIoIsAttributedPerShard) {
  ShardedIndexOptions so;
  so.shards = 3;
  auto index = std::move(ShardedIndex::Build(opts_, so, data_, nullptr))
                   .ValueUnsafe();
  uint64_t logical = 0;
  for (size_t s = 0; s < index->shards(); ++s) {
    logical += index->shard_io(s).logical_reads;
  }
  EXPECT_EQ(logical, 0u);  // build I/O is not serving I/O
  std::vector<uint64_t> ids;
  ASSERT_TRUE(index->SearchBox(boxes_[0], ExecOptions{}, &ids).ok());
  logical = 0;
  for (size_t s = 0; s < index->shards(); ++s) {
    logical += index->shard_io(s).logical_reads;
  }
  EXPECT_GT(logical, 0u);
  index->ResetIo();
  for (size_t s = 0; s < index->shards(); ++s) {
    EXPECT_EQ(index->shard_io(s).logical_reads, 0u);
  }
}

// The configuration the server runs: many client threads scattering over
// one ShardedIndex on one shared pool, with a metrics poller alongside.
// Must be byte-identical per client and TSAN-clean (CI runs this file
// under -DHT_SANITIZE=thread).
TEST_F(ShardedSearchTest, ConcurrentClientsStayIdenticalAndRaceFree) {
  ShardedIndexOptions so;
  so.shards = 4;
  ThreadPool pool(4);
  auto index =
      std::move(ShardedIndex::Build(opts_, so, data_, &pool)).ValueUnsafe();

  constexpr size_t kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t total = 0;
      for (size_t s = 0; s < index->shards(); ++s) {
        total += index->shard_io(s).logical_reads;
      }
      (void)total;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ExecOptions exec;
      std::vector<uint64_t> ids;
      std::vector<std::pair<double, uint64_t>> knn;
      for (size_t i = c; i < kQueries; i += 1) {
        if (!index->SearchBox(boxes_[i], exec, &ids).ok() ||
            ids != ref_box_[i]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        if (!index->SearchKnn(centers_[i], kK, metric_, exec, &knn).ok() ||
            knn != ref_knn_[i]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace ht
