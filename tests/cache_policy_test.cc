// Eviction-policy unit tests for the segmented (scan-resistant) buffer
// pool, the access-class I/O counters, and the CacheManager's global
// budget arbitration — plus a TSAN stress for concurrent rebalance-vs-
// fetch traffic (the CI TSAN job runs this binary).
//
// The properties under test (see storage/buffer_pool.h):
//  * kLru is byte-for-byte the classic single-list policy.
//  * kSlru promotes on re-reference (always for query traffic, only with
//    sketch evidence for scan traffic), so a full one-touch sweep cannot
//    displace the promoted hot set — it churns probation only.
//  * Prefetched-never-referenced pages live outside the recency lists;
//    once a newer batch lands they are evicted FIRST, while the freshest
//    batch is spared until probation is exhausted.
//  * SetCapacity reshapes a live pool; the CacheManager uses it to split
//    one budget across pools by observed demand misses.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/cache_manager.h"

namespace ht {
namespace {

/// Allocates `n` one-byte-stamped pages through the pool (unbounded
/// capacity assumed) and returns their ids.
std::vector<PageId> MakePages(BufferPool& pool, size_t n) {
  std::vector<PageId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    h.data()[0] = static_cast<uint8_t>(i);
    h.MarkDirty();
    ids.push_back(h.id());
  }
  return ids;
}

uint64_t QueryMisses(const BufferPool& pool) {
  return pool.stats().class_misses[static_cast<size_t>(AccessClass::kQuery)];
}

uint64_t ClassEvictions(const BufferPool& pool, AccessClass c) {
  return pool.stats().class_evictions[static_cast<size_t>(c)];
}

// The tentpole property: a promoted hot working set survives a full
// one-touch scan sweep untouched — the sweep may only churn probation.
TEST(CachePolicyTest, ScanResistanceHotSetSurvivesFullSweep) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0, CachePolicy::kSlru);
  std::vector<PageId> ids = MakePages(pool, 100);
  ASSERT_TRUE(pool.SetCapacity(32).ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();

  // Warm the hot set: the second (query-class) touch promotes each page
  // into the protected segment.
  const size_t kHot = 16;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < kHot; ++i) {
      ASSERT_TRUE(pool.Fetch(ids[i]).ok());
    }
  }
  EXPECT_EQ(pool.SnapshotCache().protected_pages, kHot);

  // Full scan sweep: every page once, tagged as scan traffic.
  {
    AccessClassScope scan(AccessClass::kScan);
    for (PageId id : ids) ASSERT_TRUE(pool.Fetch(id).ok());
  }

  // The hot set must still be resident: zero query-class misses on
  // re-reference, and every sweep eviction was charged to probation
  // churn, not to the protected set.
  const uint64_t misses_before = QueryMisses(pool);
  for (size_t i = 0; i < kHot; ++i) {
    ASSERT_TRUE(pool.Fetch(ids[i]).ok());
  }
  EXPECT_EQ(QueryMisses(pool), misses_before);
  EXPECT_EQ(pool.SnapshotCache().protected_pages, kHot);
  EXPECT_EQ(ClassEvictions(pool, AccessClass::kQuery), 0u);
  EXPECT_GT(ClassEvictions(pool, AccessClass::kScan), 0u);
}

// Scan-class re-references do not promote without sketch evidence of
// genuine multi-touch (>= kSketchPromote accesses), so even a REPEATED
// scan cannot flood the protected segment.
TEST(CachePolicyTest, ScanTrafficNeedsFrequencyEvidenceToPromote) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0, CachePolicy::kSlru);
  std::vector<PageId> ids = MakePages(pool, 8);
  ASSERT_TRUE(pool.SetCapacity(32).ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();

  AccessClassScope scan(AccessClass::kScan);
  // Pass 1 (miss, freq 1) and pass 2 (hit, freq 2): still probation.
  for (int pass = 0; pass < 2; ++pass) {
    for (PageId id : ids) ASSERT_TRUE(pool.Fetch(id).ok());
  }
  EXPECT_EQ(pool.SnapshotCache().protected_pages, 0u);
  // Pass 3 (freq reaches the promote threshold): now protected.
  for (PageId id : ids) ASSERT_TRUE(pool.Fetch(id).ok());
  EXPECT_EQ(pool.SnapshotCache().protected_pages, ids.size());
}

// kLru must behave exactly like the classic single-list policy: victims
// in recency order, no segmentation, no prefetch queue.
TEST(CachePolicyTest, KLruIsPlainLru) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0, CachePolicy::kLru);
  std::vector<PageId> ids = MakePages(pool, 5);
  ASSERT_TRUE(pool.SetCapacity(3).ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();

  // A, B, C resident; touch A; D must evict B (the LRU victim).
  ASSERT_TRUE(pool.Fetch(ids[0]).ok());
  ASSERT_TRUE(pool.Fetch(ids[1]).ok());
  ASSERT_TRUE(pool.Fetch(ids[2]).ok());
  ASSERT_TRUE(pool.Fetch(ids[0]).ok());
  ASSERT_TRUE(pool.Fetch(ids[3]).ok());
  uint64_t misses = QueryMisses(pool);
  ASSERT_TRUE(pool.Fetch(ids[0]).ok());  // A: hit (was MRU-refreshed)
  ASSERT_TRUE(pool.Fetch(ids[2]).ok());  // C: hit (younger than B)
  EXPECT_EQ(QueryMisses(pool), misses);
  ASSERT_TRUE(pool.Fetch(ids[1]).ok());  // B: the evicted one — miss
  EXPECT_EQ(QueryMisses(pool), misses + 1);

  const BufferPool::CacheSnapshot snap = pool.SnapshotCache();
  EXPECT_EQ(snap.policy, CachePolicy::kLru);
  EXPECT_EQ(snap.protected_pages, 0u);
  EXPECT_EQ(snap.prefetch_queue_pages, 0u);
  EXPECT_EQ(snap.probation_pages, snap.cached_pages);
}

// Satellite 3: prefetched-but-never-referenced pages from a SUPERSEDED
// batch are the first eviction victims — before any demand page — while
// the freshest batch is spared (it is about to be consumed).
TEST(CachePolicyTest, StalePrefetchEvictedFirstFreshBatchSpared) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0, CachePolicy::kSlru);
  std::vector<PageId> ids = MakePages(pool, 40);
  ASSERT_TRUE(pool.SetCapacity(16).ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();

  // Protected hot set of 8.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < 8; ++i) ASSERT_TRUE(pool.Fetch(ids[i]).ok());
  }
  // Batch A (will go stale), then batch B (the fresh one).
  const std::vector<PageId> batch_a(ids.begin() + 8, ids.begin() + 12);
  const std::vector<PageId> batch_b(ids.begin() + 12, ids.begin() + 16);
  pool.Prefetch(batch_a);
  pool.Prefetch(batch_b);
  EXPECT_EQ(pool.SnapshotCache().prefetch_queue_pages, 8u);

  // Two demand misses at full capacity: both victims must come from the
  // stale batch A — not from the hot set, not from fresh batch B.
  ASSERT_TRUE(pool.Fetch(ids[20]).ok());
  ASSERT_TRUE(pool.Fetch(ids[21]).ok());
  EXPECT_EQ(pool.SnapshotCache().prefetch_queue_pages, 6u);
  EXPECT_EQ(ClassEvictions(pool, AccessClass::kPrefetch), 2u);

  // Fresh batch B is fully intact: every fetch is a prefetch hit.
  const uint64_t phits = pool.stats().prefetch_hits;
  for (PageId id : batch_b) ASSERT_TRUE(pool.Fetch(id).ok());
  EXPECT_EQ(pool.stats().prefetch_hits, phits + batch_b.size());

  // And the protected hot set never paid for any of it.
  const uint64_t misses = QueryMisses(pool);
  for (size_t i = 0; i < 8; ++i) ASSERT_TRUE(pool.Fetch(ids[i]).ok());
  EXPECT_EQ(QueryMisses(pool), misses);
}

// A single outstanding prefetch batch (no newer one) is NOT stale: demand
// misses take probation victims instead, so the batch survives to be
// consumed.
TEST(CachePolicyTest, FreshPrefetchSurvivesDemandMisses) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0, CachePolicy::kSlru);
  std::vector<PageId> ids = MakePages(pool, 20);
  ASSERT_TRUE(pool.SetCapacity(8).ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  pool.ResetStats();

  // Six one-touch probation pages, then a 4-page prefetch batch: filling
  // it evicts probation tails, never its own pages.
  for (size_t i = 0; i < 6; ++i) ASSERT_TRUE(pool.Fetch(ids[i]).ok());
  const std::vector<PageId> batch(ids.begin() + 6, ids.begin() + 10);
  pool.Prefetch(batch);
  EXPECT_EQ(pool.SnapshotCache().prefetch_queue_pages, batch.size());

  // More demand misses at capacity: victims come from probation.
  ASSERT_TRUE(pool.Fetch(ids[10]).ok());
  ASSERT_TRUE(pool.Fetch(ids[11]).ok());
  EXPECT_EQ(pool.SnapshotCache().prefetch_queue_pages, batch.size());

  const uint64_t phits = pool.stats().prefetch_hits;
  for (PageId id : batch) ASSERT_TRUE(pool.Fetch(id).ok());
  EXPECT_EQ(pool.stats().prefetch_hits, phits + batch.size());
}

TEST(CachePolicyTest, SetCapacityShrinksAndGrows) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0, CachePolicy::kSlru);
  std::vector<PageId> ids = MakePages(pool, 20);
  EXPECT_EQ(pool.SnapshotCache().cached_pages, 20u);

  ASSERT_TRUE(pool.SetCapacity(5).ok());
  EXPECT_LE(pool.SnapshotCache().cached_pages, 5u);
  EXPECT_EQ(pool.capacity(), 5u);

  ASSERT_TRUE(pool.SetCapacity(12).ok());
  for (PageId id : ids) ASSERT_TRUE(pool.Fetch(id).ok());
  EXPECT_LE(pool.SnapshotCache().cached_pages, 12u);
  EXPECT_EQ(pool.capacity(), 12u);
}

// The per-class counters obey the IoStats algebra used by the serving
// tier (Accumulate for scatter sums, Delta for windows, Reset).
TEST(CachePolicyTest, ClassCountersAccumulateDeltaReset) {
  IoStats a, b;
  a.class_hits[0] = 10;
  a.class_misses[0] = 5;
  a.class_evictions[2] = 3;
  b.class_hits[0] = 1;
  b.class_misses[1] = 7;
  a.Accumulate(b);
  EXPECT_EQ(a.class_hits[0], 11u);
  EXPECT_EQ(a.class_misses[1], 7u);
  EXPECT_DOUBLE_EQ(a.ClassHitRate(AccessClass::kQuery), 11.0 / 16.0);

  IoStats since;
  since.class_hits[0] = 4;
  const IoStats d = a.Delta(since);
  EXPECT_EQ(d.class_hits[0], 7u);
  EXPECT_EQ(d.class_evictions[2], 3u);

  a.Reset();
  EXPECT_EQ(a.class_hits[0], 0u);
  EXPECT_EQ(a.class_misses[1], 0u);
  EXPECT_EQ(a.class_evictions[2], 0u);
}

// CacheManager: registration splits the budget evenly; rebalance shifts
// capacity toward the pool with the demand misses; unregistration returns
// the freed share.
TEST(CacheManagerTest, SplitRebalanceUnregister) {
  MemPagedFile file_a(256), file_b(256);
  BufferPool pool_a(&file_a, 0, CachePolicy::kSlru);
  BufferPool pool_b(&file_b, 0, CachePolicy::kSlru);
  std::vector<PageId> ids_a = MakePages(pool_a, 64);
  std::vector<PageId> ids_b = MakePages(pool_b, 64);

  CacheManagerOptions mopts;
  mopts.total_budget_pages = 64;
  mopts.min_pool_pages = 8;
  mopts.rebalance_interval = 4;
  mopts.smoothing = 1.0;  // jump straight to the computed target
  CacheManager mgr(mopts);
  mgr.Register("a", &pool_a);
  mgr.Register("b", &pool_b);
  EXPECT_EQ(mgr.pool_count(), 2u);
  EXPECT_EQ(pool_a.capacity(), 32u);
  EXPECT_EQ(pool_b.capacity(), 32u);

  // Pool A takes heavy demand-miss traffic; pool B stays idle.
  for (int round = 0; round < 3; ++round) {
    for (PageId id : ids_a) ASSERT_TRUE(pool_a.Fetch(id).ok());
  }
  std::vector<CacheManager::PoolReport> reports = mgr.Report();
  ASSERT_EQ(reports.size(), 2u);
  const size_t ia = reports[0].name == "a" ? 0 : 1;
  EXPECT_GT(reports[ia].window_misses, 0u);
  EXPECT_EQ(reports[1 - ia].window_misses, 0u);

  // MaybeRebalance is count-gated: only the interval-th call rebalances.
  for (int i = 0; i < 3; ++i) mgr.MaybeRebalance();
  EXPECT_EQ(pool_a.capacity(), 32u);
  mgr.MaybeRebalance();  // 4th call fires
  EXPECT_GT(pool_a.capacity(), pool_b.capacity());
  EXPECT_EQ(pool_b.capacity(), mopts.min_pool_pages);
  EXPECT_LE(pool_a.capacity() + pool_b.capacity(), mopts.total_budget_pages);

  mgr.Unregister(&pool_a);
  EXPECT_EQ(mgr.pool_count(), 1u);
  EXPECT_EQ(pool_b.capacity(), mopts.total_budget_pages);
  mgr.Unregister(&pool_b);
}

// TSAN stress: concurrent demand fetches (all access classes), prefetch
// batches, and a rebalance loop resizing the pool through the manager.
// The assertion is cleanliness under TSAN; the counters just sanity-check
// that both sides actually ran.
TEST(CachePolicyStress, ConcurrentRebalanceVsFetch) {
  MemPagedFile file(256);
  BufferPool pool(&file, 0, CachePolicy::kSlru);
  std::vector<PageId> ids = MakePages(pool, 128);
  ASSERT_TRUE(pool.SetConcurrentMode(true).ok());
  ASSERT_TRUE(pool.SetCapacity(64).ok());

  CacheManagerOptions mopts;
  mopts.total_budget_pages = 64;
  mopts.min_pool_pages = 16;
  mopts.rebalance_interval = 1;
  CacheManager mgr(mopts);
  mgr.Register("p", &pool);

  constexpr int kFetchThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kFetchThreads; ++t) {
    threads.emplace_back([&, t] {
      const AccessClass classes[] = {AccessClass::kQuery, AccessClass::kScan,
                                     AccessClass::kIngest};
      uint64_t x = 0x9E3779B9u * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const PageId id = ids[x % ids.size()];
        AccessClassScope cls(classes[i % 3]);
        ASSERT_TRUE(pool.Fetch(id).ok());
        if (i % 64 == 0) {
          const PageId batch[3] = {ids[(x + 1) % ids.size()],
                                   ids[(x + 2) % ids.size()],
                                   ids[(x + 3) % ids.size()]};
          pool.Prefetch(batch);
        }
      }
    });
  }
  std::thread rebalancer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      mgr.MaybeRebalance();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  rebalancer.join();
  mgr.Unregister(&pool);

  const IoStats stats = pool.stats();
  uint64_t demand = 0;
  for (size_t c = 0; c < kNumAccessClasses; ++c) {
    demand += stats.class_hits[c] + stats.class_misses[c];
  }
  EXPECT_EQ(demand, static_cast<uint64_t>(kFetchThreads) * kIters);
  EXPECT_GE(pool.capacity(), mopts.min_pool_pages);
}

}  // namespace
}  // namespace ht
