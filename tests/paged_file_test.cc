// Unit tests for the in-memory and on-disk paged files.

#include "storage/paged_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/latency_injecting_file.h"

namespace ht {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

template <typename MakeFile>
void RunBasicContract(MakeFile make) {
  auto file = make();
  EXPECT_EQ(file->page_count(), 0u);

  auto p0 = file->Allocate();
  ASSERT_TRUE(p0.ok());
  auto p1 = file->Allocate();
  ASSERT_TRUE(p1.ok());
  EXPECT_NE(*p0, *p1);

  Page page(file->page_size());
  page.data()[0] = 42;
  page.data()[file->page_size() - 1] = 24;
  ASSERT_TRUE(file->Write(*p1, page).ok());

  Page readback(file->page_size());
  ASSERT_TRUE(file->Read(*p1, &readback).ok());
  EXPECT_EQ(readback.data()[0], 42);
  EXPECT_EQ(readback.data()[file->page_size() - 1], 24);

  // Fresh pages read back zeroed.
  ASSERT_TRUE(file->Read(*p0, &readback).ok());
  EXPECT_EQ(readback.data()[0], 0);

  // Free + reallocate recycles ids.
  ASSERT_TRUE(file->Free(*p0).ok());
  auto p2 = file->Allocate();
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p2, *p0);
}

TEST(MemPagedFileTest, BasicContract) {
  RunBasicContract([] { return std::make_unique<MemPagedFile>(512); });
}

TEST(DiskPagedFileTest, BasicContract) {
  RunBasicContract([] {
    auto r = DiskPagedFile::Create(TempPath("basic.htf"), 512);
    return std::move(r).ValueOrDie();
  });
}

TEST(MemPagedFileTest, ReadUnallocatedFails) {
  MemPagedFile file(256);
  Page p(256);
  EXPECT_TRUE(file.Read(3, &p).IsNotFound());
}

TEST(MemPagedFileTest, DoubleFreeFails) {
  MemPagedFile file(256);
  PageId id = file.Allocate().ValueOrDie();
  EXPECT_TRUE(file.Free(id).ok());
  EXPECT_TRUE(file.Free(id).IsInvalidArgument());
}

TEST(MemPagedFileTest, PageSizeMismatchRejected) {
  MemPagedFile file(256);
  PageId id = file.Allocate().ValueOrDie();
  Page wrong(512);
  EXPECT_TRUE(file.Read(id, &wrong).IsInvalidArgument());
  EXPECT_TRUE(file.Write(id, wrong).IsInvalidArgument());
}

TEST(DiskPagedFileTest, PersistsAcrossReopen) {
  const std::string path = TempPath("reopen.htf");
  PageId id;
  {
    auto file = DiskPagedFile::Create(path, 1024).ValueOrDie();
    id = file->Allocate().ValueOrDie();
    Page page(1024);
    for (size_t i = 0; i < 1024; ++i) {
      page.data()[i] = static_cast<uint8_t>(i % 251);
    }
    ASSERT_TRUE(file->Write(id, page).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    EXPECT_EQ(file->page_size(), 1024u);
    EXPECT_EQ(file->page_count(), 1u);
    Page page(1024);
    ASSERT_TRUE(file->Read(id, &page).ok());
    for (size_t i = 0; i < 1024; ++i) {
      ASSERT_EQ(page.data()[i], static_cast<uint8_t>(i % 251)) << i;
    }
  }
}

TEST(DiskPagedFileTest, FreelistPersists) {
  const std::string path = TempPath("freelist.htf");
  PageId freed;
  {
    auto file = DiskPagedFile::Create(path, 512).ValueOrDie();
    (void)file->Allocate().ValueOrDie();
    freed = file->Allocate().ValueOrDie();
    (void)file->Allocate().ValueOrDie();
    ASSERT_TRUE(file->Free(freed).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    EXPECT_EQ(file->Allocate().ValueOrDie(), freed);
  }
}

TEST(DiskPagedFileTest, OpenMissingFileFails) {
  auto r = DiskPagedFile::Open(TempPath("does-not-exist.htf"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(DiskPagedFileTest, OpenGarbageFails) {
  const std::string path = TempPath("garbage.htf");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("not a paged file at all, just text", 1, 34, f);
  std::fclose(f);
  auto r = DiskPagedFile::Open(path);
  EXPECT_FALSE(r.ok());
}

// --- ReadBatch -------------------------------------------------------------

/// Allocates `n` pages, stamping page i's bytes with (i * 31 + j) % 251.
template <typename File>
std::vector<PageId> StampPages(File& file, size_t n) {
  std::vector<PageId> ids;
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(file.Allocate().ValueOrDie());
    Page p(file.page_size());
    for (size_t j = 0; j < p.size(); ++j) {
      p.data()[j] = static_cast<uint8_t>((i * 31 + j) % 251);
    }
    EXPECT_TRUE(file.Write(ids.back(), p).ok());
  }
  return ids;
}

void ExpectStamp(const Page& p, size_t i) {
  for (size_t j = 0; j < p.size(); ++j) {
    ASSERT_EQ(p.data()[j], static_cast<uint8_t>((i * 31 + j) % 251))
        << "page " << i << " byte " << j;
  }
}

template <typename MakeFile>
void RunReadBatchContract(MakeFile make) {
  auto file = make();
  const size_t kPages = 6;
  std::vector<PageId> ids = StampPages(*file, kPages);

  // Empty batch: OK, no I/O counted.
  file->ResetStats();
  ASSERT_TRUE(file->ReadBatch({}, {}).ok());
  EXPECT_EQ(file->stats().batch_reads, 0u);
  EXPECT_EQ(file->stats().physical_reads, 0u);

  // Full batch in reverse order (exercises the offset sort): one
  // batch_read, n physical reads, every page correct.
  std::vector<Page> pages;
  std::vector<Page*> outs;
  for (size_t i = 0; i < kPages; ++i) pages.emplace_back(file->page_size());
  for (size_t i = 0; i < kPages; ++i) outs.push_back(&pages[i]);
  std::vector<PageId> reversed(ids.rbegin(), ids.rend());
  ASSERT_TRUE(file->ReadBatch(reversed, outs).ok());
  for (size_t i = 0; i < kPages; ++i) ExpectStamp(pages[i], kPages - 1 - i);
  EXPECT_EQ(file->stats().batch_reads, 1u);
  EXPECT_EQ(file->stats().physical_reads, kPages);

  // Duplicate ids: each occurrence is filled (duplicates break coalesced
  // runs, so this also exercises the run-splitting path on disk).
  std::vector<PageId> dups = {ids[2], ids[2], ids[3], ids[2]};
  std::vector<Page> dpages;
  std::vector<Page*> douts;
  for (size_t i = 0; i < dups.size(); ++i) {
    dpages.emplace_back(file->page_size());
  }
  for (size_t i = 0; i < dups.size(); ++i) douts.push_back(&dpages[i]);
  ASSERT_TRUE(file->ReadBatch(dups, douts).ok());
  ExpectStamp(dpages[0], 2);
  ExpectStamp(dpages[1], 2);
  ExpectStamp(dpages[2], 3);
  ExpectStamp(dpages[3], 2);

  // Unallocated id mid-batch: NotFound, and validation happens before any
  // I/O — output pages keep whatever they held (here: the stamp above).
  std::vector<PageId> bad = {ids[0], static_cast<PageId>(9999), ids[1]};
  std::vector<Page*> bouts = {&dpages[0], &dpages[1], &dpages[2]};
  file->ResetStats();
  EXPECT_TRUE(file->ReadBatch(bad, bouts).IsNotFound());
  EXPECT_EQ(file->stats().physical_reads, 0u);

  // Length mismatch between ids and outs.
  std::vector<PageId> two = {ids[0], ids[1]};
  std::vector<Page*> one = {&dpages[0]};
  EXPECT_TRUE(file->ReadBatch(two, one).IsInvalidArgument());

  // Wrong-size output page.
  Page wrong(file->page_size() * 2);
  std::vector<Page*> wouts = {&wrong};
  std::vector<PageId> wids = {ids[0]};
  EXPECT_TRUE(file->ReadBatch(wids, wouts).IsInvalidArgument());
}

TEST(MemPagedFileTest, ReadBatchContract) {
  RunReadBatchContract([] { return std::make_unique<MemPagedFile>(512); });
}

TEST(DiskPagedFileTest, ReadBatchContract) {
  RunReadBatchContract([] {
    auto r = DiskPagedFile::Create(TempPath("batch.htf"), 512);
    return std::move(r).ValueOrDie();
  });
}

TEST(DiskPagedFileTest, ReadBatchCoalescingBoundaries) {
  // Mix of adjacent runs and gaps: ids 0,1,2 | 4 | 6,7 (page 3 and 5 are
  // allocated but skipped), submitted shuffled. Contents must be exact
  // regardless of how runs coalesce into preadv calls.
  auto file = DiskPagedFile::Create(TempPath("coalesce.htf"), 256).ValueOrDie();
  std::vector<PageId> all = StampPages(*file, 8);
  std::vector<PageId> want = {all[6], all[0], all[4], all[2], all[7], all[1]};
  std::vector<size_t> stamp = {6, 0, 4, 2, 7, 1};
  std::vector<Page> pages;
  std::vector<Page*> outs;
  for (size_t i = 0; i < want.size(); ++i) {
    pages.emplace_back(file->page_size());
  }
  for (size_t i = 0; i < want.size(); ++i) outs.push_back(&pages[i]);
  file->ResetStats();
  ASSERT_TRUE(file->ReadBatch(want, outs).ok());
  for (size_t i = 0; i < want.size(); ++i) ExpectStamp(pages[i], stamp[i]);
  EXPECT_EQ(file->stats().batch_reads, 1u);
  EXPECT_EQ(file->stats().physical_reads, want.size());
}

TEST(LatencyInjectingFileTest, CountsRoundTripsAndDelegates) {
  MemPagedFile base(256);
  std::vector<PageId> ids = StampPages(base, 3);
  LatencyInjectingPagedFile lat(&base);  // zero latency: counting only
  Page p(256);
  ASSERT_TRUE(lat.Read(ids[0], &p).ok());
  ExpectStamp(p, 0);
  std::vector<Page> pages;
  std::vector<Page*> outs;
  for (size_t i = 0; i < 3; ++i) pages.emplace_back(256);
  for (size_t i = 0; i < 3; ++i) outs.push_back(&pages[i]);
  ASSERT_TRUE(lat.ReadBatch(ids, outs).ok());
  for (size_t i = 0; i < 3; ++i) ExpectStamp(pages[i], i);
  // One Read + one ReadBatch = two blocking round trips, regardless of
  // batch size; the wrapped file still counts 4 physical reads.
  EXPECT_EQ(lat.read_calls(), 2u);
  EXPECT_EQ(lat.stats().physical_reads, 4u);
  lat.ResetReadCalls();
  EXPECT_EQ(lat.read_calls(), 0u);
}

// --- WriteBatch ------------------------------------------------------------

template <typename MakeFile>
void RunWriteBatchContract(MakeFile make) {
  auto file = make();
  const size_t kPages = 6;
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    ids.push_back(file->Allocate().ValueOrDie());
  }

  // Empty batch: OK, no I/O counted.
  file->ResetStats();
  ASSERT_TRUE(file->WriteBatch({}, {}).ok());
  EXPECT_EQ(file->stats().batch_writes, 0u);
  EXPECT_EQ(file->stats().writes, 0u);

  // Full batch submitted in reverse order (exercises the offset sort): one
  // batch_write, n per-page writes, every page readable afterwards.
  std::vector<Page> pages;
  for (size_t i = 0; i < kPages; ++i) {
    pages.emplace_back(file->page_size());
    for (size_t j = 0; j < pages[i].size(); ++j) {
      pages[i].data()[j] = static_cast<uint8_t>((i * 31 + j) % 251);
    }
  }
  std::vector<PageId> rev_ids(ids.rbegin(), ids.rend());
  std::vector<const Page*> rev_pages;
  for (size_t i = 0; i < kPages; ++i) {
    rev_pages.push_back(&pages[kPages - 1 - i]);
  }
  ASSERT_TRUE(file->WriteBatch(rev_ids, rev_pages).ok());
  EXPECT_EQ(file->stats().batch_writes, 1u);
  EXPECT_EQ(file->stats().writes, kPages);
  for (size_t i = 0; i < kPages; ++i) {
    Page back(file->page_size());
    ASSERT_TRUE(file->Read(ids[i], &back).ok());
    ExpectStamp(back, i);
  }

  // Duplicate ids: rejected up front — after offset sorting, which
  // occurrence would win is unspecified, so the batch is refused before
  // any I/O and the file keeps its previous contents.
  Page zero(file->page_size());
  std::vector<PageId> dup_ids = {ids[1], ids[2], ids[1]};
  std::vector<const Page*> dup_pages = {&zero, &zero, &zero};
  file->ResetStats();
  EXPECT_TRUE(file->WriteBatch(dup_ids, dup_pages).IsInvalidArgument());
  EXPECT_EQ(file->stats().writes, 0u);

  // Unallocated id mid-batch: NotFound, validated before any I/O — the
  // in-range pages of the batch must NOT have been written.
  std::vector<PageId> bad_ids = {ids[0], static_cast<PageId>(9999)};
  std::vector<const Page*> bad_pages = {&zero, &zero};
  EXPECT_TRUE(file->WriteBatch(bad_ids, bad_pages).IsNotFound());
  EXPECT_EQ(file->stats().writes, 0u);
  Page back(file->page_size());
  ASSERT_TRUE(file->Read(ids[0], &back).ok());
  ExpectStamp(back, 0);

  // Length mismatch and wrong-size buffers.
  std::vector<PageId> two = {ids[0], ids[1]};
  std::vector<const Page*> one = {&zero};
  EXPECT_TRUE(file->WriteBatch(two, one).IsInvalidArgument());
  Page wrong(file->page_size() * 2);
  std::vector<PageId> wids = {ids[0]};
  std::vector<const Page*> wpages = {&wrong};
  EXPECT_TRUE(file->WriteBatch(wids, wpages).IsInvalidArgument());
  std::vector<const Page*> npages = {nullptr};
  EXPECT_TRUE(file->WriteBatch(wids, npages).IsInvalidArgument());
  ASSERT_TRUE(file->Read(ids[0], &back).ok());
  ExpectStamp(back, 0);
}

TEST(MemPagedFileTest, WriteBatchContract) {
  RunWriteBatchContract([] { return std::make_unique<MemPagedFile>(512); });
}

TEST(DiskPagedFileTest, WriteBatchContract) {
  RunWriteBatchContract([] {
    auto r = DiskPagedFile::Create(TempPath("wbatch.htf"), 512);
    return std::move(r).ValueOrDie();
  });
}

TEST(DiskPagedFileTest, WriteBatchCoalescingBoundaries) {
  // Adjacent runs and gaps — ids 0,1,2 | 4 | 6,7 written, 3 and 5 left
  // zeroed — submitted shuffled. Readback must be exact regardless of how
  // runs coalesce into pwritev calls, and the skipped pages must stay
  // untouched.
  auto file =
      DiskPagedFile::Create(TempPath("wcoalesce.htf"), 256).ValueOrDie();
  std::vector<PageId> all;
  for (size_t i = 0; i < 8; ++i) all.push_back(file->Allocate().ValueOrDie());
  std::vector<size_t> stamp = {6, 0, 4, 2, 7, 1};
  std::vector<Page> pages;
  for (size_t s : stamp) {
    pages.emplace_back(file->page_size());
    for (size_t j = 0; j < pages.back().size(); ++j) {
      pages.back().data()[j] = static_cast<uint8_t>((s * 31 + j) % 251);
    }
  }
  std::vector<PageId> ids;
  std::vector<const Page*> ptrs;
  for (size_t i = 0; i < stamp.size(); ++i) {
    ids.push_back(all[stamp[i]]);
    ptrs.push_back(&pages[i]);
  }
  file->ResetStats();
  ASSERT_TRUE(file->WriteBatch(ids, ptrs).ok());
  EXPECT_EQ(file->stats().batch_writes, 1u);
  EXPECT_EQ(file->stats().writes, stamp.size());
  for (size_t s : {6, 0, 4, 2, 7, 1}) {
    Page back(file->page_size());
    ASSERT_TRUE(file->Read(all[s], &back).ok());
    ExpectStamp(back, s);
  }
  for (size_t s : {3, 5}) {
    Page back(file->page_size());
    ASSERT_TRUE(file->Read(all[s], &back).ok());
    for (size_t j = 0; j < back.size(); ++j) {
      ASSERT_EQ(back.data()[j], 0u) << "page " << s << " byte " << j;
    }
  }
}

TEST(DiskPagedFileTest, WriteBatchBeyondIovLimit) {
  // More adjacent pages than one pwritev can carry (IOV_MAX-bounded): the
  // batch must split internally and still land every page.
  auto file = DiskPagedFile::Create(TempPath("wiov.htf"), 64).ValueOrDie();
  const size_t kPages = 1100;  // > the 1024-iovec cap
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    ids.push_back(file->Allocate().ValueOrDie());
  }
  std::vector<Page> pages;
  std::vector<const Page*> ptrs;
  for (size_t i = 0; i < kPages; ++i) {
    pages.emplace_back(file->page_size());
    pages[i].data()[0] = static_cast<uint8_t>(i % 251);
  }
  for (size_t i = 0; i < kPages; ++i) ptrs.push_back(&pages[i]);
  file->ResetStats();
  ASSERT_TRUE(file->WriteBatch(ids, ptrs).ok());
  EXPECT_EQ(file->stats().batch_writes, 1u);
  for (size_t i = 0; i < kPages; ++i) {
    Page back(file->page_size());
    ASSERT_TRUE(file->Read(ids[i], &back).ok());
    ASSERT_EQ(back.data()[0], static_cast<uint8_t>(i % 251)) << i;
  }
}

TEST(LatencyInjectingFileTest, CountsWriteRoundTrips) {
  MemPagedFile base(256);
  std::vector<PageId> ids;
  for (size_t i = 0; i < 3; ++i) ids.push_back(base.Allocate().ValueOrDie());
  LatencyInjectingPagedFile lat(&base);  // zero latency: counting only
  Page p(256);
  ASSERT_TRUE(lat.Write(ids[0], p).ok());
  std::vector<const Page*> ptrs = {&p, &p, &p};
  // Aliasing one buffer across the batch is fine: distinct ids.
  ASSERT_TRUE(lat.WriteBatch(ids, ptrs).ok());
  // One Write + one WriteBatch = two blocking round trips regardless of
  // batch size; the wrapped file still counts 4 per-page writes.
  EXPECT_EQ(lat.write_calls(), 2u);
  EXPECT_EQ(lat.stats().writes, 4u);
  EXPECT_EQ(lat.stats().batch_writes, 1u);
  lat.ResetWriteCalls();
  EXPECT_EQ(lat.write_calls(), 0u);
}

TEST(PagedFileTest, StatsCountOperations) {
  MemPagedFile file(256);
  PageId id = file.Allocate().ValueOrDie();
  Page p(256);
  ASSERT_TRUE(file.Write(id, p).ok());
  ASSERT_TRUE(file.Read(id, &p).ok());
  ASSERT_TRUE(file.Read(id, &p).ok());
  EXPECT_EQ(file.stats().allocations, 1u);
  EXPECT_EQ(file.stats().writes, 1u);
  EXPECT_EQ(file.stats().physical_reads, 2u);
  file.ResetStats();
  EXPECT_EQ(file.stats().physical_reads, 0u);
}

}  // namespace
}  // namespace ht
