// Unit tests for the in-memory and on-disk paged files.

#include "storage/paged_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace ht {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

template <typename MakeFile>
void RunBasicContract(MakeFile make) {
  auto file = make();
  EXPECT_EQ(file->page_count(), 0u);

  auto p0 = file->Allocate();
  ASSERT_TRUE(p0.ok());
  auto p1 = file->Allocate();
  ASSERT_TRUE(p1.ok());
  EXPECT_NE(*p0, *p1);

  Page page(file->page_size());
  page.data()[0] = 42;
  page.data()[file->page_size() - 1] = 24;
  ASSERT_TRUE(file->Write(*p1, page).ok());

  Page readback(file->page_size());
  ASSERT_TRUE(file->Read(*p1, &readback).ok());
  EXPECT_EQ(readback.data()[0], 42);
  EXPECT_EQ(readback.data()[file->page_size() - 1], 24);

  // Fresh pages read back zeroed.
  ASSERT_TRUE(file->Read(*p0, &readback).ok());
  EXPECT_EQ(readback.data()[0], 0);

  // Free + reallocate recycles ids.
  ASSERT_TRUE(file->Free(*p0).ok());
  auto p2 = file->Allocate();
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p2, *p0);
}

TEST(MemPagedFileTest, BasicContract) {
  RunBasicContract([] { return std::make_unique<MemPagedFile>(512); });
}

TEST(DiskPagedFileTest, BasicContract) {
  RunBasicContract([] {
    auto r = DiskPagedFile::Create(TempPath("basic.htf"), 512);
    return std::move(r).ValueOrDie();
  });
}

TEST(MemPagedFileTest, ReadUnallocatedFails) {
  MemPagedFile file(256);
  Page p(256);
  EXPECT_TRUE(file.Read(3, &p).IsNotFound());
}

TEST(MemPagedFileTest, DoubleFreeFails) {
  MemPagedFile file(256);
  PageId id = file.Allocate().ValueOrDie();
  EXPECT_TRUE(file.Free(id).ok());
  EXPECT_TRUE(file.Free(id).IsInvalidArgument());
}

TEST(MemPagedFileTest, PageSizeMismatchRejected) {
  MemPagedFile file(256);
  PageId id = file.Allocate().ValueOrDie();
  Page wrong(512);
  EXPECT_TRUE(file.Read(id, &wrong).IsInvalidArgument());
  EXPECT_TRUE(file.Write(id, wrong).IsInvalidArgument());
}

TEST(DiskPagedFileTest, PersistsAcrossReopen) {
  const std::string path = TempPath("reopen.htf");
  PageId id;
  {
    auto file = DiskPagedFile::Create(path, 1024).ValueOrDie();
    id = file->Allocate().ValueOrDie();
    Page page(1024);
    for (size_t i = 0; i < 1024; ++i) {
      page.data()[i] = static_cast<uint8_t>(i % 251);
    }
    ASSERT_TRUE(file->Write(id, page).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    EXPECT_EQ(file->page_size(), 1024u);
    EXPECT_EQ(file->page_count(), 1u);
    Page page(1024);
    ASSERT_TRUE(file->Read(id, &page).ok());
    for (size_t i = 0; i < 1024; ++i) {
      ASSERT_EQ(page.data()[i], static_cast<uint8_t>(i % 251)) << i;
    }
  }
}

TEST(DiskPagedFileTest, FreelistPersists) {
  const std::string path = TempPath("freelist.htf");
  PageId freed;
  {
    auto file = DiskPagedFile::Create(path, 512).ValueOrDie();
    (void)file->Allocate().ValueOrDie();
    freed = file->Allocate().ValueOrDie();
    (void)file->Allocate().ValueOrDie();
    ASSERT_TRUE(file->Free(freed).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    auto file = DiskPagedFile::Open(path).ValueOrDie();
    EXPECT_EQ(file->Allocate().ValueOrDie(), freed);
  }
}

TEST(DiskPagedFileTest, OpenMissingFileFails) {
  auto r = DiskPagedFile::Open(TempPath("does-not-exist.htf"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(DiskPagedFileTest, OpenGarbageFails) {
  const std::string path = TempPath("garbage.htf");
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("not a paged file at all, just text", 1, 34, f);
  std::fclose(f);
  auto r = DiskPagedFile::Open(path);
  EXPECT_FALSE(r.ok());
}

TEST(PagedFileTest, StatsCountOperations) {
  MemPagedFile file(256);
  PageId id = file.Allocate().ValueOrDie();
  Page p(256);
  ASSERT_TRUE(file.Write(id, p).ok());
  ASSERT_TRUE(file.Read(id, &p).ok());
  ASSERT_TRUE(file.Read(id, &p).ok());
  EXPECT_EQ(file.stats().allocations, 1u);
  EXPECT_EQ(file.stats().writes, 1u);
  EXPECT_EQ(file.stats().physical_reads, 2u);
  file.ResetStats();
  EXPECT_EQ(file.stats().physical_reads, 0u);
}

}  // namespace
}  // namespace ht
