// Unit and property tests for distance metrics.

#include "geometry/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ht {
namespace {

TEST(MetricsTest, PointDistances) {
  const std::vector<float> a = {0.0f, 0.0f};
  const std::vector<float> b = {3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(L1Metric().Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(L2Metric().Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(LInfMetric().Distance(a, b), 4.0);
  EXPECT_NEAR(LpMetric(3).Distance(a, b), std::cbrt(27.0 + 64.0), 1e-12);
}

TEST(MetricsTest, GenericLpMatchesSpecializations) {
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    std::vector<float> a(8), b(8);
    for (int d = 0; d < 8; ++d) {
      a[d] = static_cast<float>(rng.NextDouble());
      b[d] = static_cast<float>(rng.NextDouble());
    }
    EXPECT_NEAR(LpMetric(1).Distance(a, b), L1Metric().Distance(a, b), 1e-9);
    EXPECT_NEAR(LpMetric(2).Distance(a, b), L2Metric().Distance(a, b), 1e-9);
  }
}

TEST(MetricsTest, MinDistZeroInsideBox) {
  Box box = Box::FromBounds({0.2f, 0.2f}, {0.8f, 0.8f});
  const std::vector<float> inside = {0.5f, 0.3f};
  EXPECT_DOUBLE_EQ(L1Metric().MinDistToBox(inside, box), 0.0);
  EXPECT_DOUBLE_EQ(L2Metric().MinDistToBox(inside, box), 0.0);
  EXPECT_DOUBLE_EQ(LInfMetric().MinDistToBox(inside, box), 0.0);
}

TEST(MetricsTest, MinDistKnownValues) {
  Box box = Box::FromBounds({0.0f, 0.0f}, {1.0f, 1.0f});
  const std::vector<float> q = {2.0f, -1.0f};  // gaps: 1.0 and 1.0
  EXPECT_DOUBLE_EQ(L1Metric().MinDistToBox(q, box), 2.0);
  EXPECT_DOUBLE_EQ(L2Metric().MinDistToBox(q, box), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(LInfMetric().MinDistToBox(q, box), 1.0);
}

TEST(MetricsTest, WeightedL2RespectsWeights) {
  WeightedL2Metric m({4.0, 0.0});
  const std::vector<float> a = {0.0f, 0.0f};
  const std::vector<float> b = {1.0f, 5.0f};
  // Second dimension weight 0: ignored entirely.
  EXPECT_DOUBLE_EQ(m.Distance(a, b), 2.0);
  Box box = Box::FromBounds({2.0f, 9.0f}, {3.0f, 10.0f});
  EXPECT_DOUBLE_EQ(m.MinDistToBox(a, box), 4.0);
}

/// Property: MinDistToBox is a valid lower bound of the distance to any
/// point inside the box, and is attained by some point (for Lp).
class MinDistLowerBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(MinDistLowerBoundTest, LowerBoundsAllInteriorPoints) {
  const int metric_id = GetParam();
  std::unique_ptr<DistanceMetric> metric;
  switch (metric_id) {
    case 0: metric = std::make_unique<L1Metric>(); break;
    case 1: metric = std::make_unique<L2Metric>(); break;
    case 2: metric = std::make_unique<LInfMetric>(); break;
    case 3: metric = std::make_unique<LpMetric>(3.0); break;
    default:
      metric = std::make_unique<WeightedL2Metric>(
          std::vector<double>{0.5, 2.0, 1.0, 0.1});
  }
  Rng rng(1000 + metric_id);
  const uint32_t dim = 4;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> lo(dim), hi(dim), q(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      float a = static_cast<float>(rng.NextDouble());
      float b = static_cast<float>(rng.NextDouble());
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
      q[d] = static_cast<float>(rng.Uniform(-0.5, 1.5));
    }
    Box box = Box::FromBounds(lo, hi);
    const double mind = metric->MinDistToBox(q, box);
    for (int s = 0; s < 20; ++s) {
      std::vector<float> x(dim);
      for (uint32_t d = 0; d < dim; ++d) {
        x[d] = static_cast<float>(rng.Uniform(box.lo(d), box.hi(d)));
      }
      EXPECT_GE(metric->Distance(q, x) + 1e-6, mind);
    }
    // The closest point (clamp) should attain the bound for Lp metrics.
    std::vector<float> clamp(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      clamp[d] = std::clamp(q[d], box.lo(d), box.hi(d));
    }
    EXPECT_NEAR(metric->Distance(q, clamp), mind, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MinDistLowerBoundTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(MetricsTest, Names) {
  EXPECT_EQ(L1Metric().Name(), "L1");
  EXPECT_EQ(L2Metric().Name(), "L2");
  EXPECT_EQ(LInfMetric().Name(), "Linf");
  EXPECT_EQ(WeightedL2Metric({1.0}).Name(), "WeightedL2");
}

}  // namespace
}  // namespace ht
