// Extension (beyond the paper): query hot-path microbenchmark for the
// batched data-page distance kernels (DistanceMetric::BatchDistance /
// BatchDistanceWithBound) and the zero-allocation SearchScratch k-NN path.
//
// Part 1 scans real serialized data pages (paper page size, FOURIER 16-d)
// three ways and reports points/second:
//   scalar      one virtual Distance() call per row (the pre-batch path)
//   batch       one virtual BatchDistance() call per page
//   batch+bound one BatchDistanceWithBound() call per page, bound set to
//               the query's true k-NN distance (the bound a k-NN search
//               reaches at steady state) -> early abandoning kicks in.
//
// Part 2 runs identical k-NN workloads against two trees built from the
// same data, one with HybridTreeOptions::disable_batch_kernels (the scalar
// reference path) and one with the default batched path, cross-checks that
// the results are byte-identical, and reports QPS.
//
// Machine-readable output: BENCH_hotpath.json in the working directory.
//
// Env overrides (on top of bench_common.h): HT_BENCH_N (default 100000).

#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/timing.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "core/node.h"
#include "geometry/metrics.h"

using namespace ht;
using namespace ht::bench;

namespace {

constexpr uint32_t kDim = 16;
constexpr size_t kPageSize = kDefaultPageSize;
constexpr size_t kKnnK = 10;

/// The dataset serialized as real data pages at real capacity.
struct PageSet {
  std::vector<std::vector<uint8_t>> pages;
  size_t total_points = 0;
};

PageSet SerializePages(const Dataset& data) {
  PageSet ps;
  const size_t cap = DataNode::Capacity(kDim, kPageSize);
  for (size_t base = 0; base < data.size(); base += cap) {
    DataNode node;
    const size_t n = std::min(cap, data.size() - base);
    for (size_t i = 0; i < n; ++i) {
      const auto row = data.Row(base + i);
      node.entries.push_back(
          {base + i, std::vector<float>(row.begin(), row.end())});
    }
    ps.pages.emplace_back(kPageSize);
    node.Serialize(ps.pages.back().data(), kPageSize, kDim);
    ps.total_points += n;
  }
  return ps;
}

double Checksum(const std::vector<double>& v, double bound) {
  double s = 0.0;
  for (double d : v) {
    if (d <= bound) s += d;
  }
  return s;
}

}  // namespace

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 100000);
  const size_t n_queries = Queries();
  PrintHeader(
      "Extension: batched distance kernels + zero-allocation k-NN path",
      "beyond the paper: data-page scan throughput, scalar vs batch vs "
      "batch+early-abandon; end-to-end k-NN QPS",
      "FOURIER 16-d, n=" + std::to_string(n) + ", page=" +
          std::to_string(kPageSize) + "B, queries=" +
          std::to_string(n_queries) + ", k=" + std::to_string(kKnnK) +
          ", L2 metric");

  Rng rng(20260806);
  Dataset data = GenFourier(n, kDim, rng);
  auto centers = MakeQueryCenters(data, n_queries, rng);
  L2Metric l2;

  // Trees for part 2 (and for the true k-NN bounds used in part 1).
  HybridTreeOptions opts;
  opts.dim = kDim;
  opts.page_size = kPageSize;
  MemPagedFile file_batch(kPageSize), file_scalar(kPageSize);
  auto tree_batch = BulkLoad(opts, &file_batch, data).ValueOrDie();
  opts.disable_batch_kernels = true;
  auto tree_scalar = BulkLoad(opts, &file_scalar, data).ValueOrDie();

  // Per-query k-NN distances = the steady-state search bound.
  std::vector<double> knn_bound(centers.size());
  for (size_t q = 0; q < centers.size(); ++q) {
    auto nn = tree_batch->SearchKnn(centers[q], kKnnK, l2).ValueOrDie();
    knn_bound[q] = nn.back().first;
  }

  // -------------------------------------------------------------------
  // Part 1: raw data-page scan throughput.
  // -------------------------------------------------------------------
  PageSet ps = SerializePages(data);
  std::vector<double> out(DataNode::Capacity(kDim, kPageSize));
  double sink = 0.0;

  auto scan_pass = [&](int mode, size_t q) {
    const std::span<const float> query(centers[q]);
    const double bound = knn_bound[q];
    for (const auto& page : ps.pages) {
      DataPageScan scan(page.data(), kPageSize, kDim);
      const size_t rows = scan.count();
      const float* blk = scan.block();
      if (mode == 0 || blk == nullptr) {
        for (size_t i = 0; i < rows; ++i) {
          out[i] = l2.Distance(query, scan.vec(i));
        }
      } else if (mode == 1) {
        l2.BatchDistance(query, blk, scan.stride_floats(), rows, out.data());
      } else {
        l2.BatchDistanceWithBound(query, blk, scan.stride_floats(), rows,
                                  bound, out.data());
      }
      sink += Checksum(out, bound);
    }
  };

  const char* kModeNames[] = {"scalar", "batch", "batch+bound"};
  double points_per_sec[3] = {0, 0, 0};
  for (int mode = 0; mode < 3; ++mode) {
    scan_pass(mode, 0);  // warm-up
    WallTimer t;
    size_t scanned = 0;
    for (size_t q = 0; q < centers.size(); ++q) {
      scan_pass(mode, q);
      scanned += ps.total_points;
    }
    points_per_sec[mode] = static_cast<double>(scanned) / t.Seconds();
  }

  std::printf("\nData-page scan throughput (%zu pages, %zu points):\n",
              ps.pages.size(), ps.total_points);
  TablePrinter kernel_table({"kernel", "Mpts/s", "speedup vs scalar"});
  for (int mode = 0; mode < 3; ++mode) {
    kernel_table.AddRow({kModeNames[mode],
                         TablePrinter::Num(points_per_sec[mode] / 1e6, 1),
                         TablePrinter::Num(
                             points_per_sec[mode] / points_per_sec[0], 2)});
  }
  kernel_table.Print();

  // -------------------------------------------------------------------
  // Part 2: end-to-end k-NN QPS, scalar reference path vs batched path.
  // -------------------------------------------------------------------
  SearchScratch scratch;
  std::vector<std::pair<double, uint64_t>> nn, ref;
  bool identical = true;
  double qps[2] = {0, 0};
  HybridTree* trees[2] = {tree_scalar.get(), tree_batch.get()};
  for (int which = 0; which < 2; ++which) {
    // Warm-up pass (buffer pool, node cache, scratch).
    for (size_t q = 0; q < centers.size(); ++q) {
      HT_CHECK_OK(
          trees[which]->SearchKnnInto(centers[q], kKnnK, l2, &scratch, &nn));
    }
    for (size_t q = 0; q < centers.size(); ++q) {
      HT_CHECK_OK(
          trees[which]->SearchKnnInto(centers[q], kKnnK, l2, &scratch, &nn));
      // Cross-check against the scalar reference answer.
      HT_CHECK_OK(trees[0]->SearchKnnInto(centers[q], kKnnK, l2, nullptr,
                                          &ref));
      if (nn != ref) identical = false;
    }
    WallTimer pure;
    for (size_t q = 0; q < centers.size(); ++q) {
      HT_CHECK_OK(
          trees[which]->SearchKnnInto(centers[q], kKnnK, l2, &scratch, &nn));
    }
    qps[which] = static_cast<double>(centers.size()) / pure.Seconds();
  }

  std::printf("\nEnd-to-end k-NN (k=%zu, %zu queries):\n", kKnnK,
              centers.size());
  TablePrinter knn_table({"path", "QPS", "speedup"});
  knn_table.AddRow({"scalar reference", TablePrinter::Num(qps[0], 0), "1.00"});
  knn_table.AddRow({"batched kernels", TablePrinter::Num(qps[1], 0),
                    TablePrinter::Num(qps[1] / qps[0], 2)});
  knn_table.Print();
  std::printf("Cross-check: batched results %s\n",
              identical ? "byte-identical to the scalar path"
                        : "MISMATCH (BUG)");
  std::printf("(checksum %.6f)\n", sink);

  // Machine-readable record.
  FILE* json = std::fopen("BENCH_hotpath.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"hotpath\",\n"
                 "  \"dataset\": \"fourier\",\n"
                 "  \"dim\": %u,\n"
                 "  \"n\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"k\": %zu,\n"
                 "  \"page_size\": %zu,\n"
                 "  \"scan_points_per_sec\": {\n"
                 "    \"scalar\": %.0f,\n"
                 "    \"batch\": %.0f,\n"
                 "    \"batch_bound\": %.0f\n"
                 "  },\n"
                 "  \"scan_speedup_batch\": %.3f,\n"
                 "  \"scan_speedup_batch_bound\": %.3f,\n"
                 "  \"knn_qps\": {\"scalar\": %.1f, \"batch\": %.1f},\n"
                 "  \"knn_speedup\": %.3f,\n"
                 "  \"results_identical\": %s\n"
                 "}\n",
                 kDim, n, centers.size(), kKnnK, kPageSize,
                 points_per_sec[0], points_per_sec[1], points_per_sec[2],
                 points_per_sec[1] / points_per_sec[0],
                 points_per_sec[2] / points_per_sec[0], qps[0], qps[1],
                 qps[1] / qps[0], identical ? "true" : "false");
    std::fclose(json);
    std::printf("Wrote BENCH_hotpath.json\n");
  }
  return identical ? 0 : 1;
}
