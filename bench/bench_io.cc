// Extension (beyond the paper): the cold-cache I/O pipeline. The paper
// reports logical accesses and assumes each costs one random disk read;
// this bench measures what the batched/prefetching read path does to that
// cost when pages actually have latency.
//
// Rig: a FOURIER 16-d tree is bulk-loaded into a MemPagedFile, then served
// through a LatencyInjectingPagedFile (fixed per-call + per-page delay, the
// classic positioning-vs-transfer disk model) with a buffer pool capped at
// a small fraction of the tree. Every query starts cold (EvictAll), so the
// sweep isolates the read pipeline:
//
//   pool fraction x injected latency x prefetch depth -> avg kNN latency,
//   blocking read round trips, logical reads.
//
// Expected shape: logical reads are identical at every depth (prefetch
// never touches the paper's figure-of-merit); round trips fall roughly as
// pops/(depth+1); latency falls with them because a ReadBatch(n) pays the
// per-call setup once instead of n times. Results are cross-checked
// byte-for-byte against depth 0.
//
// Usage: bench_io [--smoke]   (--smoke: tiny sweep for CI)
// Env:   HT_BENCH_N, HT_BENCH_QUERIES (see bench_common.h)

#include "bench_common.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/timing.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "storage/latency_injecting_file.h"

using namespace ht;
using namespace ht::bench;

namespace {

struct Cell {
  double pool_fraction = 0.0;
  size_t pool_pages = 0;
  double per_call_us = 0.0;
  double per_page_us = 0.0;
  size_t depth = 0;
  double avg_ms = 0.0;
  double round_trips = 0.0;   // blocking read calls per query
  double logical_reads = 0.0; // per query (must not vary with depth)
  double speedup = 1.0;       // vs depth 0 in the same (pool, latency) row
  bool identical = true;      // results byte-identical to depth 0
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t n = smoke ? 4000 : EnvSize("HT_BENCH_N", 20000);
  const size_t n_queries =
      smoke ? 4 : std::max<size_t>(1, EnvSize("HT_BENCH_QUERIES", 16));
  const size_t k = 10;

  PrintHeader(
      "Extension: batched + prefetching cold-cache I/O pipeline",
      "beyond the paper: the paper counts random accesses (sec 4); this "
      "measures latency once accesses cost time",
      "FOURIER 16-d, n=" + std::to_string(n) + ", " +
          std::to_string(n_queries) + " cold kNN queries, k=" +
          std::to_string(k) + ", L2 metric" + (smoke ? " [smoke]" : ""));

  Rng rng(4242);
  Dataset data = GenFourier(n, 16, rng);
  MemPagedFile file;
  HybridTreeOptions opts;
  opts.dim = 16;
  {
    // Build once, persist, drop: every sweep cell reopens the same bytes.
    auto built = BulkLoad(opts, &file, data).ValueOrDie();
    HT_CHECK_OK(built->Flush());
  }
  const size_t tree_pages = file.page_count();
  auto centers = MakeQueryCenters(data, n_queries, rng);
  L2Metric l2;

  const std::vector<double> pool_fractions =
      smoke ? std::vector<double>{0.10} : std::vector<double>{0.05, 0.10};
  // (per_call_us, per_page_us): positioning-dominated and a faster device.
  const std::vector<std::pair<double, double>> latencies =
      smoke ? std::vector<std::pair<double, double>>{{100.0, 10.0}}
            : std::vector<std::pair<double, double>>{{100.0, 10.0},
                                                     {25.0, 2.5}};
  const std::vector<size_t> depths =
      smoke ? std::vector<size_t>{0, 4} : std::vector<size_t>{0, 2, 4, 8};

  std::printf("\nTree: %zu pages; cold kNN sweep (per query: EvictAll, then "
              "SearchKnn):\n", tree_pages);
  TablePrinter table({"pool", "latency (us)", "depth", "avg (ms)", "speedup",
                      "round trips", "logical reads", "identical"});

  std::vector<Cell> cells;
  bool all_identical = true;
  bool logical_invariant = true;
  double accept_speedup = 0.0;  // best depth>=4 speedup at pool<=10%

  for (double frac : pool_fractions) {
    const size_t pool_pages = std::max<size_t>(
        8, static_cast<size_t>(frac * static_cast<double>(tree_pages)));
    for (const auto& [per_call_us, per_page_us] : latencies) {
      double base_ms = 0.0;
      double base_logical = 0.0;
      std::vector<std::vector<std::pair<double, uint64_t>>> reference;
      for (size_t depth : depths) {
        LatencyInjectingPagedFile latfile(&file);  // latency off for Open
        auto tree = HybridTree::Open(&latfile, pool_pages).ValueOrDie();
        tree->SetPrefetchDepth(depth);
        latfile.set_latency(per_call_us * 1e-6, per_page_us * 1e-6);
        latfile.ResetReadCalls();
        tree->pool().ResetStats();

        Cell cell;
        cell.pool_fraction = frac;
        cell.pool_pages = pool_pages;
        cell.per_call_us = per_call_us;
        cell.per_page_us = per_page_us;
        cell.depth = depth;

        SearchScratch scratch;
        std::vector<std::pair<double, uint64_t>> nn;
        double total_s = 0.0;
        for (size_t q = 0; q < centers.size(); ++q) {
          HT_CHECK_OK(tree->pool().EvictAll());
          WallTimer t;
          HT_CHECK_OK(tree->SearchKnnInto(centers[q], k, l2, &scratch, &nn));
          total_s += t.Seconds();
          if (depth == depths.front()) {
            reference.push_back(nn);
          } else if (nn != reference[q]) {
            cell.identical = false;
          }
        }
        const double dq = static_cast<double>(centers.size());
        cell.avg_ms = 1e3 * total_s / dq;
        cell.round_trips = static_cast<double>(latfile.read_calls()) / dq;
        cell.logical_reads =
            static_cast<double>(tree->pool().StatsSnapshot().logical_reads) /
            dq;
        if (depth == depths.front()) {
          base_ms = cell.avg_ms;
          base_logical = cell.logical_reads;
        }
        cell.speedup = cell.avg_ms > 0.0 ? base_ms / cell.avg_ms : 1.0;
        if (cell.logical_reads != base_logical) logical_invariant = false;
        if (!cell.identical) all_identical = false;
        if (depth >= 4 && frac <= 0.10 && cell.speedup > accept_speedup) {
          accept_speedup = cell.speedup;
        }

        table.AddRow({TablePrinter::Num(frac, 2) + " (" +
                          std::to_string(pool_pages) + "p)",
                      TablePrinter::Num(per_call_us, 0) + "+" +
                          TablePrinter::Num(per_page_us, 1) + "/pg",
                      std::to_string(depth), TablePrinter::Num(cell.avg_ms, 3),
                      TablePrinter::Num(cell.speedup, 2),
                      TablePrinter::Num(cell.round_trips, 1),
                      TablePrinter::Num(cell.logical_reads, 1),
                      cell.identical ? "yes" : "NO"});
        cells.push_back(cell);
      }
    }
  }
  table.Print();

  std::printf("Cross-checks: results %s; logical reads %s across depths.\n",
              all_identical ? "byte-identical to depth 0" : "MISMATCH (BUG)",
              logical_invariant ? "invariant" : "VARY (BUG)");
  std::printf("Best cold-cache speedup at depth >= 4 (pool <= 10%%): "
              "%.2fx %s\n",
              accept_speedup,
              accept_speedup >= 2.0 ? "(>= 2x target met)"
                                    : "(below 2x target)");
  std::printf(
      "Expected shape: round trips fall ~ (depth+1)x while logical reads "
      "stay flat — prefetch batches physical I/O without touching the "
      "paper's access counts; speedup approaches the per-call/per-page "
      "cost ratio.\n");

  FILE* json = std::fopen("BENCH_io.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"io\",\n"
                 "  \"dataset\": \"fourier\",\n"
                 "  \"dim\": 16,\n"
                 "  \"n\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"k\": %zu,\n"
                 "  \"tree_pages\": %zu,\n"
                 "  \"smoke\": %s,\n"
                 "  \"results_identical\": %s,\n"
                 "  \"logical_reads_invariant\": %s,\n"
                 "  \"best_speedup_depth_ge4\": %.3f,\n"
                 "  \"cells\": [\n",
                 n, n_queries, k, tree_pages, smoke ? "true" : "false",
                 all_identical ? "true" : "false",
                 logical_invariant ? "true" : "false", accept_speedup);
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(json,
                   "    {\"pool_fraction\": %.2f, \"pool_pages\": %zu, "
                   "\"per_call_us\": %.1f, \"per_page_us\": %.1f, "
                   "\"depth\": %zu, \"avg_ms\": %.4f, \"speedup\": %.3f, "
                   "\"round_trips\": %.2f, \"logical_reads\": %.2f}%s\n",
                   c.pool_fraction, c.pool_pages, c.per_call_us, c.per_page_us,
                   c.depth, c.avg_ms, c.speedup, c.round_trips,
                   c.logical_reads, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("Wrote BENCH_io.json\n");
  }
  return all_identical && logical_invariant ? 0 : 1;
}
