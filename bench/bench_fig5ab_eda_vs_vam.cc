// Figure 5(a),(b): impact of the EDA-optimal node-splitting algorithms.
// Hybrid trees built with EDA-optimal splits vs. VAMSplit-style splits
// (max-variance dimension, median position) on COLHIST data; the paper
// reports average disk accesses (a) and average CPU time (b) per query at
// 16/32/64 dimensions, with EDA-optimal consistently ahead and the gap
// widening with dimensionality.

#include "bench_common.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 20000);
  const size_t n_queries = Queries();
  PrintHeader("Figure 5(a),(b): EDA-optimal vs VAM split",
              "Chakrabarti & Mehrotra, ICDE 1999, Figure 5(a),(b)",
              "COLHIST surrogate, n=" + std::to_string(n) + ", selectivity=0.2%, queries=" +
                  std::to_string(n_queries) + ", page=4096");

  TablePrinter table({"dim", "EDA accesses", "VAM accesses", "EDA CPU (ms)",
                      "VAM CPU (ms)", "VAM/EDA IO"});
  for (uint32_t dim : {16u, 32u, 64u}) {
    Rng rng(7000 + dim);
    Dataset data = GenColhist(n, dim, rng);
    data.NormalizeUnitCube();  // paper §3.2: normalized feature space
    BoxWorkload w = MakeBoxWorkload(data, kColhistSelectivity, n_queries, rng);
    BuildConfig config;
    config.expected_query_side = w.side;

    QueryCosts eda = MeasureBox(IndexKind::kHybrid, data, config, w.queries);
    QueryCosts vam =
        MeasureBox(IndexKind::kHybridVam, data, config, w.queries);
    table.AddRow({std::to_string(dim), TablePrinter::Num(eda.avg_accesses, 1),
                  TablePrinter::Num(vam.avg_accesses, 1),
                  TablePrinter::Num(eda.avg_cpu_seconds * 1e3, 3),
                  TablePrinter::Num(vam.avg_cpu_seconds * 1e3, 3),
                  TablePrinter::Num(vam.avg_accesses /
                                        std::max(1.0, eda.avg_accesses),
                                    2)});
  }
  table.Print();
  std::printf(
      "Paper's shape: EDA-optimal <= VAM at every dimensionality. Our "
      "measured shape: near-parity (VAM/EDA -> 1.0 as d grows). The EDA "
      "optimality theorem assumes uniformly-placed queries; this workload "
      "centers queries on data points (see EXPERIMENTS.md for the "
      "analysis).\n");
  return 0;
}
