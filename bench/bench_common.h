// Copyright 2026 The HybridTree Authors.
// Shared helpers for the per-figure benchmark binaries.
//
// Every bench prints the paper experiment it reproduces, its (env-
// overridable) configuration, and a table with the same rows/series the
// paper reports. Absolute numbers differ from the 1999 testbed; the
// comparisons of interest are the normalized costs and orderings.
//
// Environment overrides:
//   HT_BENCH_N        dataset size            (default per bench)
//   HT_BENCH_QUERIES  queries per data point  (default 100)

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/workload.h"
#include "eval/harness.h"
#include "eval/hybrid_adapter.h"

namespace ht::bench {

inline size_t Queries() { return EnvSize("HT_BENCH_QUERIES", 100); }

/// The paper's constant selectivities (§4).
inline constexpr double kColhistSelectivity = 0.002;   // 0.2%
inline constexpr double kFourierSelectivity = 0.0007;  // 0.07%

struct BoxWorkload {
  std::vector<Box> queries;
  double side = 0.0;
};

/// Query centers at jittered data points; side calibrated to `selectivity`.
inline BoxWorkload MakeBoxWorkload(const Dataset& data, double selectivity,
                                   size_t n_queries, Rng& rng) {
  BoxWorkload w;
  w.side = CalibrateBoxSide(data, selectivity, 20, rng);
  auto centers = MakeQueryCenters(data, n_queries, rng);
  w.queries.reserve(centers.size());
  for (const auto& c : centers) w.queries.push_back(MakeBoxQuery(c, w.side));
  return w;
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const std::string& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Config: %s\n", config.c_str());
  std::printf("==============================================================\n");
}

/// Builds + measures one structure on a box workload; returns costs.
inline QueryCosts MeasureBox(IndexKind kind, const Dataset& data,
                             const BuildConfig& config,
                             const std::vector<Box>& queries) {
  auto bundle_r = BuildIndex(kind, data, config);
  HT_CHECK_OK(bundle_r.status());
  auto costs_r = RunBoxWorkload(bundle_r.ValueOrDie().index.get(), queries);
  HT_CHECK_OK(costs_r.status());
  return costs_r.ValueOrDie();
}

}  // namespace ht::bench
