// Extension (beyond the paper): the batched write-back and parallel
// ingest pipeline — the write-side dual of bench_io.
//
// Rig: FOURIER 16-d over a MemPagedFile served through a
// LatencyInjectingPagedFile with a WRITE cost model (per-call setup plus
// per-page transfer, the same positioning-vs-transfer shape bench_io uses
// for reads). Two sweeps:
//
//  1. Cold build: BulkLoad + Flush at 1 (serial), 2, and 4 worker
//     threads. The parallel loader writes disjoint leaf chunks straight
//     to the file, so its blocking write latencies overlap across
//     workers while the serial loader pays the whole flush in one
//     thread; the resulting files must be byte-identical.
//  2. Incremental ingest: singleton Insert loop vs InsertBatch under a
//     small buffer pool, where every leaf touch costs an eviction
//     write-back. Grouping points by target leaf turns k singleton
//     read-modify-writes of a leaf into one, so write (and read) round
//     trips fall with batch size; query results must match the loop.
//
// Usage: bench_ingest [--smoke]   (--smoke: tiny sweep for CI)
// Env:   HT_BENCH_N (build points; ingest uses half)

#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/timing.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "storage/latency_injecting_file.h"

using namespace ht;
using namespace ht::bench;

namespace {

struct BuildCell {
  size_t threads = 0;
  double wall_s = 0.0;
  double speedup = 1.0;
  uint64_t write_calls = 0;
  uint64_t pages_written = 0;
  bool identical = true;
};

struct IngestCell {
  size_t batch = 0;  // 0 = singleton Insert loop
  double wall_s = 0.0;
  uint64_t write_calls = 0;
  uint64_t pages_written = 0;
  uint64_t read_calls = 0;
  bool identical = true;
};

std::vector<uint64_t> SortedAll(const HybridTree& tree, uint32_t dim) {
  auto ids = tree.SearchBox(Box::UnitCube(dim)).ValueOrDie();
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const uint32_t dim = 16;
  const size_t n_build = smoke ? 4000 : EnvSize("HT_BENCH_N", 40000);
  const size_t n_ingest = std::max<size_t>(1000, n_build / 2);

  PrintHeader(
      "Extension: batched write-back + parallel ingest pipeline",
      "beyond the paper: write-side dual of the bench_io read pipeline",
      "FOURIER 16-d, build n=" + std::to_string(n_build) + ", ingest n=" +
          std::to_string(n_ingest) + (smoke ? " [smoke]" : ""));

  Rng rng(4242);
  Dataset data = GenFourier(n_build, dim, rng);
  HybridTreeOptions opts;
  opts.dim = dim;

  // Write cost model: 0.5 ms positioning + 2 ms per page — transfer-
  // dominated so batching and overlap are what the sweep isolates.
  const double kWritePerCall = 500e-6;
  const double kWritePerPage = 2000e-6;

  // --- Sweep 1: cold-cache build, serial vs parallel bulk load. -----------
  std::printf("\nCold build (BulkLoad + Flush), write cost %.1f+%.1fms/pg:\n",
              kWritePerCall * 1e3, kWritePerPage * 1e3);
  TablePrinter build_table({"threads", "wall (s)", "speedup", "write trips",
                            "pages written", "identical"});
  std::vector<BuildCell> build_cells;
  std::unique_ptr<MemPagedFile> serial_image;
  double serial_wall = 0.0;
  bool all_identical = true;
  double best_parallel_speedup = 0.0;

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    auto base = std::make_unique<MemPagedFile>(opts.page_size);
    LatencyInjectingPagedFile latfile(base.get());
    latfile.set_write_latency(kWritePerCall, kWritePerPage);
    BulkLoadOptions bulk;
    bulk.threads = threads;

    BuildCell cell;
    cell.threads = threads;
    WallTimer t;
    auto tree = BulkLoad(opts, &latfile, data, bulk).ValueOrDie();
    HT_CHECK_OK(tree->Flush());
    cell.wall_s = t.Seconds();
    cell.write_calls = latfile.write_calls();
    cell.pages_written = latfile.stats().writes;
    tree.reset();

    if (threads == 1) {
      serial_wall = cell.wall_s;
      serial_image = std::move(base);
    } else {
      cell.speedup = cell.wall_s > 0.0 ? serial_wall / cell.wall_s : 1.0;
      best_parallel_speedup = std::max(best_parallel_speedup, cell.speedup);
      // Byte-identity against the serial image, page by page.
      cell.identical = base->page_count() == serial_image->page_count();
      for (PageId id = 0; cell.identical && id < base->page_count(); ++id) {
        Page a(opts.page_size), b(opts.page_size);
        const bool sa = serial_image->Read(id, &a).ok();
        const bool sb = base->Read(id, &b).ok();
        if (sa != sb) cell.identical = false;
        if (!sa || !sb) continue;  // both unallocated (freed placeholder)
        if (std::memcmp(a.data(), b.data(), opts.page_size) != 0) {
          cell.identical = false;
        }
      }
      all_identical = all_identical && cell.identical;
    }

    build_table.AddRow({std::to_string(threads),
                        TablePrinter::Num(cell.wall_s, 3),
                        TablePrinter::Num(cell.speedup, 2),
                        std::to_string(cell.write_calls),
                        std::to_string(cell.pages_written),
                        threads == 1 ? "(ref)" : cell.identical ? "yes" : "NO"});
    build_cells.push_back(cell);
  }
  build_table.Print();
  std::printf("Parallel vs serial build: best %.2fx %s; files %s.\n",
              best_parallel_speedup,
              best_parallel_speedup >= 2.0 ? "(>= 2x target met)"
                                           : "(below 2x target)",
              all_identical ? "byte-identical" : "DIFFER (BUG)");

  // --- Sweep 2: incremental ingest, Insert loop vs InsertBatch. -----------
  // Small pool (well under the final leaf count): most leaf touches miss
  // and evict, so each touch pays a read and a dirty write-back round
  // trip. Moderate latencies keep the loop baseline tractable.
  const size_t pool_pages = smoke ? 24 : 96;
  const double kInPerCall = 50e-6, kInPerPage = 10e-6;
  const double kInWritePerCall = 50e-6, kInWritePerPage = 50e-6;
  Rng ingest_rng(777);
  Dataset ingest = GenFourier(n_ingest, dim, ingest_rng);
  const std::vector<size_t> batches =
      smoke ? std::vector<size_t>{0, 512}
            : std::vector<size_t>{0, 256, 2048};

  std::printf("\nIncremental ingest (%zu points, pool %zu pages, cold "
              "start):\n", n_ingest, pool_pages);
  TablePrinter ingest_table({"batch", "wall (s)", "write trips",
                             "pages written", "read trips", "queries"});
  std::vector<IngestCell> ingest_cells;
  std::vector<uint64_t> reference_ids;
  bool queries_identical = true;
  uint64_t loop_write_calls = 0;

  for (size_t batch : batches) {
    MemPagedFile base(opts.page_size);
    LatencyInjectingPagedFile latfile(&base);
    HybridTreeOptions ingest_opts = opts;
    ingest_opts.buffer_pool_pages = pool_pages;
    auto tree = HybridTree::Create(ingest_opts, &latfile).ValueOrDie();
    latfile.set_latency(kInPerCall, kInPerPage);
    latfile.set_write_latency(kInWritePerCall, kInWritePerPage);

    IngestCell cell;
    cell.batch = batch;
    WallTimer t;
    if (batch == 0) {
      for (size_t i = 0; i < ingest.size(); ++i) {
        HT_CHECK_OK(tree->Insert(ingest.Row(i), i));
      }
    } else {
      std::vector<float> points;
      std::vector<uint64_t> ids;
      for (size_t begin = 0; begin < ingest.size(); begin += batch) {
        const size_t end = std::min(begin + batch, ingest.size());
        points.clear();
        ids.clear();
        for (size_t i = begin; i < end; ++i) {
          auto row = ingest.Row(i);
          points.insert(points.end(), row.begin(), row.end());
          ids.push_back(i);
        }
        HT_CHECK_OK(tree->InsertBatch(points, ids));
      }
    }
    HT_CHECK_OK(tree->Flush());
    cell.wall_s = t.Seconds();
    cell.write_calls = latfile.write_calls();
    cell.pages_written = latfile.stats().writes;
    cell.read_calls = latfile.read_calls();

    latfile.set_latency(0, 0);  // query check at full speed
    auto ids = SortedAll(*tree, dim);
    if (batch == batches.front()) {
      reference_ids = std::move(ids);
      loop_write_calls = cell.write_calls;
    } else {
      cell.identical = ids == reference_ids;
      queries_identical = queries_identical && cell.identical;
    }

    ingest_table.AddRow(
        {batch == 0 ? "loop" : std::to_string(batch),
         TablePrinter::Num(cell.wall_s, 3), std::to_string(cell.write_calls),
         std::to_string(cell.pages_written), std::to_string(cell.read_calls),
         batch == 0 ? "(ref)" : cell.identical ? "match" : "MISMATCH"});
    ingest_cells.push_back(cell);
  }
  ingest_table.Print();
  const uint64_t best_batch_calls =
      ingest_cells.back().write_calls > 0 ? ingest_cells.back().write_calls : 1;
  std::printf(
      "Write round trips: %llu (loop) -> %llu (largest batch), %.1fx fewer; "
      "query results %s.\n",
      static_cast<unsigned long long>(loop_write_calls),
      static_cast<unsigned long long>(ingest_cells.back().write_calls),
      static_cast<double>(loop_write_calls) /
          static_cast<double>(best_batch_calls),
      queries_identical ? "identical to the loop" : "MISMATCH (BUG)");
  std::printf(
      "Expected shape: grouping by target leaf turns k read-modify-writes "
      "of a leaf into one, so eviction round trips fall with batch size; "
      "the final FlushAll is one batched trip either way.\n");

  FILE* json = std::fopen("BENCH_ingest.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"ingest\",\n"
                 "  \"dataset\": \"fourier\",\n"
                 "  \"dim\": %u,\n"
                 "  \"n_build\": %zu,\n"
                 "  \"n_ingest\": %zu,\n"
                 "  \"smoke\": %s,\n"
                 "  \"write_per_call_us\": %.1f,\n"
                 "  \"write_per_page_us\": %.1f,\n"
                 "  \"build_identical\": %s,\n"
                 "  \"best_parallel_speedup\": %.3f,\n"
                 "  \"ingest_queries_identical\": %s,\n"
                 "  \"build\": [\n",
                 dim, n_build, n_ingest, smoke ? "true" : "false",
                 kWritePerCall * 1e6, kWritePerPage * 1e6,
                 all_identical ? "true" : "false", best_parallel_speedup,
                 queries_identical ? "true" : "false");
    for (size_t i = 0; i < build_cells.size(); ++i) {
      const BuildCell& c = build_cells[i];
      std::fprintf(json,
                   "    {\"threads\": %zu, \"wall_s\": %.4f, "
                   "\"speedup\": %.3f, \"write_calls\": %llu, "
                   "\"pages_written\": %llu, \"identical\": %s}%s\n",
                   c.threads, c.wall_s, c.speedup,
                   static_cast<unsigned long long>(c.write_calls),
                   static_cast<unsigned long long>(c.pages_written),
                   c.identical ? "true" : "false",
                   i + 1 < build_cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"ingest\": [\n");
    for (size_t i = 0; i < ingest_cells.size(); ++i) {
      const IngestCell& c = ingest_cells[i];
      std::fprintf(json,
                   "    {\"batch\": %zu, \"wall_s\": %.4f, "
                   "\"write_calls\": %llu, \"pages_written\": %llu, "
                   "\"read_calls\": %llu, \"identical\": %s}%s\n",
                   c.batch, c.wall_s,
                   static_cast<unsigned long long>(c.write_calls),
                   static_cast<unsigned long long>(c.pages_written),
                   static_cast<unsigned long long>(c.read_calls),
                   c.identical ? "true" : "false",
                   i + 1 < ingest_cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("Wrote BENCH_ingest.json\n");
  }
  return all_identical && queries_identical ? 0 : 1;
}
