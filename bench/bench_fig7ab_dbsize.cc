// Figure 7(a),(b): scalability with database size on 64-d COLHIST (paper:
// 25K..70K tuples). Normalized I/O and CPU cost vs size; the paper reports
// the hybrid tree an order of magnitude below the competition with a
// *decreasing* normalized cost (sublinear absolute growth).

#include "bench_common.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n_max = EnvSize("HT_BENCH_N", 25000);
  const size_t n_queries = Queries();
  PrintHeader("Figure 7(a),(b): database-size scalability, 64-d COLHIST",
              "Chakrabarti & Mehrotra, ICDE 1999, Figure 7(a),(b)",
              "COLHIST surrogate 64-d, sizes up to " + std::to_string(n_max) +
                  " (paper: 25K..70K), selectivity=0.2%, queries=" +
                  std::to_string(n_queries));

  Rng data_rng(7500);
  Dataset full = GenColhist(n_max, 64, data_rng);
  full.NormalizeUnitCube();  // paper §3.2: normalized feature space

  TablePrinter io({"size", "HybridTree", "hB-tree", "SR-tree", "SeqScan"});
  TablePrinter cpu({"size", "HybridTree", "hB-tree", "SR-tree", "SeqScan"});
  for (double frac : {0.4, 0.6, 0.8, 1.0}) {
    const size_t n = static_cast<size_t>(frac * static_cast<double>(n_max));
    Rng rng(7600 + n);
    Dataset data = full.Head(n);
    BoxWorkload w = MakeBoxWorkload(data, kColhistSelectivity, n_queries, rng);
    BuildConfig config;
    config.expected_query_side = w.side;

    auto scan = BuildIndex(IndexKind::kSeqScan, data, config);
    HT_CHECK_OK(scan.status());
    auto scan_costs = RunBoxWorkload(scan.ValueOrDie().index.get(), w.queries);
    HT_CHECK_OK(scan_costs.status());
    const uint64_t scan_pages =
        static_cast<uint64_t>(scan_costs.ValueOrDie().avg_accesses);

    std::vector<std::string> io_row = {std::to_string(n)};
    std::vector<std::string> cpu_row = {std::to_string(n)};
    for (IndexKind kind : {IndexKind::kHybrid, IndexKind::kHbTree,
                           IndexKind::kSrTree}) {
      QueryCosts costs = MeasureBox(kind, data, config, w.queries);
      NormalizedCosts norm =
          Normalize(costs, false, scan_pages, scan_costs.ValueOrDie());
      io_row.push_back(TablePrinter::Num(norm.io, 4));
      cpu_row.push_back(TablePrinter::Num(norm.cpu, 4));
    }
    io_row.push_back("0.1000");
    cpu_row.push_back("1.0000");
    io.AddRow(io_row);
    cpu.AddRow(cpu_row);
  }
  std::printf("\nNormalized I/O cost (Figure 7(a)):\n");
  io.Print();
  std::printf("\nNormalized CPU cost (Figure 7(b)):\n");
  cpu.Print();
  std::printf(
      "Expected shape: HybridTree far below the others at every size, with "
      "normalized cost flat-to-decreasing in size (Figure 7(a),(b)).\n");
  return 0;
}
