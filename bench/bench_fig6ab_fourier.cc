// Figure 6(a),(b): scalability to dimensionality on medium-dimensional
// data — the FOURIER dataset (paper: 400K points; first 8/12/16 Fourier
// coefficients). Normalized I/O cost and normalized CPU cost vs
// dimensionality for the hybrid tree, hB-tree, SR-tree; sequential scan is
// the 0.1 / 1.0 reference line.

#include "bench_common.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 40000);
  const size_t n_queries = Queries();
  PrintHeader("Figure 6(a),(b): dimensionality scalability, FOURIER",
              "Chakrabarti & Mehrotra, ICDE 1999, Figure 6(a),(b)",
              "FOURIER surrogate, n=" + std::to_string(n) +
                  " (paper: 400K), selectivity=0.07%, queries=" +
                  std::to_string(n_queries));

  Rng data_rng(7200);
  Dataset full = GenFourier(n, 16, data_rng);

  TablePrinter io({"dim", "HybridTree", "hB-tree", "SR-tree", "SeqScan"});
  TablePrinter cpu({"dim", "HybridTree", "hB-tree", "SR-tree", "SeqScan"});
  for (uint32_t dim : {8u, 12u, 16u}) {
    Rng rng(7300 + dim);
    Dataset data = full.Prefix(dim);
    data.NormalizeUnitCube();  // prefix projection preserves [0,1] anyway
    BoxWorkload w = MakeBoxWorkload(data, kFourierSelectivity, n_queries, rng);
    BuildConfig config;
    config.expected_query_side = w.side;

    auto scan = BuildIndex(IndexKind::kSeqScan, data, config);
    HT_CHECK_OK(scan.status());
    auto scan_costs = RunBoxWorkload(scan.ValueOrDie().index.get(), w.queries);
    HT_CHECK_OK(scan_costs.status());
    const uint64_t scan_pages =
        static_cast<uint64_t>(scan_costs.ValueOrDie().avg_accesses);

    std::vector<std::string> io_row = {std::to_string(dim)};
    std::vector<std::string> cpu_row = {std::to_string(dim)};
    for (IndexKind kind : {IndexKind::kHybrid, IndexKind::kHbTree,
                           IndexKind::kSrTree}) {
      QueryCosts costs = MeasureBox(kind, data, config, w.queries);
      NormalizedCosts norm =
          Normalize(costs, false, scan_pages, scan_costs.ValueOrDie());
      io_row.push_back(TablePrinter::Num(norm.io, 4));
      cpu_row.push_back(TablePrinter::Num(norm.cpu, 4));
    }
    io_row.push_back("0.1000");  // scan reference (paper convention)
    cpu_row.push_back("1.0000");
    io.AddRow(io_row);
    cpu.AddRow(cpu_row);
  }
  std::printf("\nNormalized I/O cost (Figure 6(a)):\n");
  io.Print();
  std::printf("\nNormalized CPU cost (Figure 6(b)):\n");
  cpu.Print();
  std::printf(
      "Paper's shape: hybrid < hB < SR at every dimensionality, SR above "
      "the scan line. Measured: same ordering on both metrics; with 1/10 of "
      "the paper's 400K points both SP trees sit near the 0.1 line "
      "(normalized cost falls with size, cf. Figure 7).\n");
  return 0;
}
