// Extension (beyond the paper): the approximate k-NN recall knob.
// Sweeps the two ExecOptions/KnnSearchLimits knobs — (1+epsilon)
// approximation and the leaf-visit budget — against exact search on the
// FOURIER 16-d workload and reports the recall@k vs throughput trade-off
// each operating point buys.
//
// Ground truth is BruteForceKnn over the raw dataset. The exact
// configuration doubles as an identity gate: SearchKnnBoundedInto with
// default limits must reproduce SearchKnnInto bitwise AND score recall
// 1.0, or the bench exits nonzero (run under CI via --smoke).
//
// QPS is the best of three interleaved measurement rounds per operating
// point (scheduler interference only ever slows a run); recall, leaf
// visits, and early-termination fractions are deterministic per point and
// measured once.
//
// Machine-readable output: BENCH_recall.json in the working directory,
// including best_speedup_at_recall95 — the largest QPS multiple over
// exact among points that keep recall@k >= 0.95.
//
// Env overrides (on top of bench_common.h): HT_BENCH_N (default 100000).
// Flags: --smoke (small n, few queries; same checks).

#include "bench_common.h"

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/timing.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "data/workload.h"
#include "geometry/kernels/kernels.h"
#include "geometry/metrics.h"

using namespace ht;
using namespace ht::bench;

namespace {

constexpr uint32_t kDim = 16;
constexpr size_t kPageSize = kDefaultPageSize;
constexpr size_t kKnnK = 10;

struct Point {
  std::string name;
  KnnSearchLimits limits;
};

struct Measured {
  double qps = 0.0;
  double recall = 0.0;
  double avg_leaf_visits = 0.0;
  double early_frac = 0.0;
};

double RecallAtK(const std::vector<std::pair<double, uint64_t>>& got,
                 const std::vector<std::pair<double, uint64_t>>& truth) {
  std::set<uint64_t> want;
  for (const auto& [d, id] : truth) want.insert(id);
  size_t hits = 0;
  for (const auto& [d, id] : got) hits += want.count(id);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t n = smoke ? 20000 : EnvSize("HT_BENCH_N", 100000);
  const size_t n_queries = smoke ? 20 : Queries();

  const kernels::SimdTier best = kernels::BestSupportedTier();
  PrintHeader(
      "Extension: approximate k-NN recall knob",
      "beyond the paper: recall@k vs throughput across the epsilon and "
      "leaf-visit-budget sweeps (exact point doubles as an identity gate)",
      "FOURIER 16-d, n=" + std::to_string(n) + ", page=" +
          std::to_string(kPageSize) + "B, queries=" +
          std::to_string(n_queries) + ", k=" + std::to_string(kKnnK) +
          ", L2 metric, tier=" + kernels::TierName(best));

  Rng rng(20260809);
  Dataset data = GenFourier(n, kDim, rng);
  auto centers = MakeQueryCenters(data, n_queries, rng);
  L2Metric l2;

  HybridTreeOptions opts;
  opts.dim = kDim;
  opts.page_size = kPageSize;
  opts.quant_sidecars = true;
  MemPagedFile file(kPageSize);
  auto tree = BulkLoad(opts, &file, data).ValueOrDie();

  // Ground truth + the exact tree answers (the identity reference).
  std::vector<std::vector<std::pair<double, uint64_t>>> truth(centers.size());
  std::vector<std::vector<std::pair<double, uint64_t>>> exact_ref(
      centers.size());
  SearchScratch scratch;
  std::vector<std::pair<double, uint64_t>> nn;
  for (size_t q = 0; q < centers.size(); ++q) {
    truth[q] = BruteForceKnn(data, centers[q], kKnnK, l2);
    HT_CHECK_OK(tree->SearchKnnInto(centers[q], kKnnK, l2, &scratch, &nn));
    exact_ref[q] = nn;
  }

  std::vector<Point> points;
  points.push_back({"exact", KnnSearchLimits{}});
  for (const double eps : {0.25, 0.5, 1.0, 2.0}) {
    KnnSearchLimits limits;
    limits.epsilon = eps;
    points.push_back({"eps=" + TablePrinter::Num(eps, 2), limits});
  }
  for (const size_t budget : {64, 32, 16, 8, 4}) {
    KnnSearchLimits limits;
    limits.max_leaf_visits = budget;
    points.push_back({"visits<=" + std::to_string(budget), limits});
  }

  // Deterministic pass per point: warm-up, recall, accounting, and (for
  // the exact point) the bitwise identity gate.
  bool identical = true;
  std::vector<Measured> m(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    double recall_sum = 0.0;
    uint64_t visits = 0;
    uint64_t early = 0;
    for (size_t q = 0; q < centers.size(); ++q) {
      KnnSearchInfo info;
      HT_CHECK_OK(tree->SearchKnnBoundedInto(centers[q], kKnnK, l2,
                                             points[p].limits, &scratch, &nn,
                                             &info));
      if (p == 0 && (nn != exact_ref[q] || info.early_terminated)) {
        identical = false;
      }
      recall_sum += RecallAtK(nn, truth[q]);
      visits += info.leaf_visits;
      early += info.early_terminated ? 1 : 0;
    }
    m[p].recall = recall_sum / static_cast<double>(centers.size());
    m[p].avg_leaf_visits =
        static_cast<double>(visits) / static_cast<double>(centers.size());
    m[p].early_frac =
        static_cast<double>(early) / static_cast<double>(centers.size());
  }
  if (m[0].recall < 1.0) identical = false;

  // Interleaved best-of-3 timing rounds.
  constexpr int kRounds = 3;
  for (int r = 0; r < kRounds; ++r) {
    for (size_t p = 0; p < points.size(); ++p) {
      WallTimer t;
      for (size_t q = 0; q < centers.size(); ++q) {
        HT_CHECK_OK(tree->SearchKnnBoundedInto(centers[q], kKnnK, l2,
                                               points[p].limits, &scratch,
                                               &nn));
      }
      const double qps = static_cast<double>(centers.size()) / t.Seconds();
      if (qps > m[p].qps) m[p].qps = qps;
    }
  }

  double best_speedup_95 = 0.0;
  for (size_t p = 1; p < points.size(); ++p) {
    if (m[p].recall >= 0.95 && m[p].qps / m[0].qps > best_speedup_95) {
      best_speedup_95 = m[p].qps / m[0].qps;
    }
  }

  std::printf("\nRecall@%zu vs throughput (%zu queries):\n", kKnnK,
              centers.size());
  TablePrinter table({"operating point", "recall@k", "QPS", "speedup",
                      "avg leaf visits", "early-term"});
  for (size_t p = 0; p < points.size(); ++p) {
    table.AddRow({points[p].name, TablePrinter::Num(m[p].recall, 4),
                  TablePrinter::Num(m[p].qps, 0),
                  TablePrinter::Num(m[p].qps / m[0].qps, 2),
                  TablePrinter::Num(m[p].avg_leaf_visits, 1),
                  TablePrinter::Num(100.0 * m[p].early_frac, 1) + "%"});
  }
  table.Print();
  std::printf("Best speedup at recall >= 0.95: %.2fx\n", best_speedup_95);
  std::printf("Identity gate (exact == SearchKnn, recall 1.0): %s\n",
              identical ? "PASS" : "FAIL (BUG)");

  FILE* json = std::fopen("BENCH_recall.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"recall\",\n"
                 "  \"dataset\": \"fourier\",\n"
                 "  \"dim\": %u,\n"
                 "  \"n\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"k\": %zu,\n"
                 "  \"tier\": \"%s\",\n"
                 "  \"points\": [\n",
                 kDim, n, centers.size(), kKnnK, kernels::TierName(best));
    for (size_t p = 0; p < points.size(); ++p) {
      std::fprintf(
          json,
          "    {\"name\": \"%s\", \"epsilon\": %.2f, "
          "\"max_leaf_visits\": %zu, \"recall\": %.4f, \"qps\": %.1f, "
          "\"speedup\": %.3f, \"avg_leaf_visits\": %.1f, "
          "\"early_term_frac\": %.3f}%s\n",
          points[p].name.c_str(), points[p].limits.epsilon,
          points[p].limits.max_leaf_visits, m[p].recall, m[p].qps,
          m[p].qps / m[0].qps, m[p].avg_leaf_visits, m[p].early_frac,
          p + 1 < points.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"best_speedup_at_recall95\": %.3f,\n"
                 "  \"exact_identical\": %s\n"
                 "}\n",
                 best_speedup_95, identical ? "true" : "false");
    std::fclose(json);
    std::printf("Wrote BENCH_recall.json\n");
  }
  return identical ? 0 : 1;
}
