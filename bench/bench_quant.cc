// Extension (beyond the paper): SIMD distance kernels + per-page 8-bit
// quantized filter-then-refine, measured end to end on scan-heavy range
// and k-NN workloads.
//
// Three configurations run the SAME queries against structurally identical
// trees; results are cross-checked bitwise (the whole point of the design
// is that the fast paths are invisible in the output):
//   baseline    batch kernels forced to the scalar tier, no sidecars
//               (the hot path exactly as before this optimization)
//   simd        batch kernels at the best tier this CPU supports
//   simd+quant  best tier + quantized filter-then-refine sidecars
//
// The filter columns report, over one measured round, how many scanned
// points the code-level lower bound pruned before any exact distance was
// computed (IoStats::scan_points / quant_refined / quant_pruned). QPS is
// the best of three interleaved measurement rounds per config — scheduler
// interference on a shared host only ever slows a run, so the best round
// is the closest estimate of each config's true speed.
//
// Machine-readable output: BENCH_quant.json in the working directory.
// Exit status is nonzero if any configuration's results differ (identity
// gate — run under CI via --smoke).
//
// Env overrides (on top of bench_common.h): HT_BENCH_N (default 100000).
// Flags: --smoke (small n, few queries; same checks); --cursor
// (additionally measures k-NN through the bound-carrying KnnCursor —
// OpenKnnCursor with limit=k, pulling k entries — per config, with its
// own identity gate against the baseline and the cursor-path filter
// counters in a "cursor" JSON section).

#include "bench_common.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/timing.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "geometry/kernels/kernels.h"
#include "geometry/metrics.h"

using namespace ht;
using namespace ht::bench;

namespace {

constexpr uint32_t kDim = 16;
constexpr size_t kPageSize = kDefaultPageSize;
constexpr size_t kKnnK = 10;

struct Config {
  const char* name;
  kernels::SimdTier tier;
  bool quant;
};

struct Measured {
  double range_qps = 0.0;
  double knn_qps = 0.0;
  uint64_t scan_points = 0;
  uint64_t refined = 0;
  uint64_t pruned = 0;
  // --cursor mode only: k-NN through the bound-carrying KnnCursor.
  double cursor_qps = 0.0;
  uint64_t cursor_scan_points = 0;
  uint64_t cursor_refined = 0;
  uint64_t cursor_pruned = 0;
};

/// One cursor-path k-NN: the first k entries of a limit=k cursor.
void CursorKnn(const HybridTree& tree, std::span<const float> center,
               const DistanceMetric& metric,
               std::vector<std::pair<double, uint64_t>>* out) {
  KnnCursorOptions copts;
  copts.limit = kKnnK;
  auto cursor = tree.OpenKnnCursor(center, metric, copts);
  out->clear();
  while (out->size() < kKnnK) {
    auto next = cursor.Next().ValueOrDie();
    if (!next.has_value()) break;
    out->push_back(*next);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool cursor_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--cursor") == 0) cursor_mode = true;
  }
  const size_t n = smoke ? 20000 : EnvSize("HT_BENCH_N", 100000);
  const size_t n_queries = smoke ? 20 : Queries();

  const kernels::SimdTier best = kernels::BestSupportedTier();
  PrintHeader(
      "Extension: SIMD dispatch + quantized filter-then-refine",
      "beyond the paper: scan-heavy range/k-NN throughput, scalar kernels "
      "vs SIMD vs SIMD+8-bit-code filtering (results byte-identical)",
      "FOURIER 16-d, n=" + std::to_string(n) + ", page=" +
          std::to_string(kPageSize) + "B, queries=" +
          std::to_string(n_queries) + ", k=" + std::to_string(kKnnK) +
          ", L2 metric, best tier=" + kernels::TierName(best));

  Rng rng(20260809);
  Dataset data = GenFourier(n, kDim, rng);
  auto centers = MakeQueryCenters(data, n_queries, rng);
  L2Metric l2;

  // Two structurally identical trees (runtime knobs do not affect build):
  // sidecars off for the first two configs, on for the third.
  HybridTreeOptions opts;
  opts.dim = kDim;
  opts.page_size = kPageSize;
  opts.quant_sidecars = false;
  MemPagedFile file_plain(kPageSize), file_quant(kPageSize);
  auto tree_plain = BulkLoad(opts, &file_plain, data).ValueOrDie();
  opts.quant_sidecars = true;
  auto tree_quant = BulkLoad(opts, &file_quant, data).ValueOrDie();

  // Scan-heavy range radii: the true k-NN distance per query (every page
  // the traversal cannot prune gets scanned; most scanned points miss).
  std::vector<double> radius(centers.size());
  for (size_t q = 0; q < centers.size(); ++q) {
    auto nn = tree_plain->SearchKnn(centers[q], kKnnK, l2).ValueOrDie();
    radius[q] = nn.back().first;
  }

  const Config configs[] = {
      {"baseline (scalar kernels)", kernels::SimdTier::kScalar, false},
      {"simd", best, false},
      {"simd+quant", best, true},
  };
  const size_t n_configs = sizeof(configs) / sizeof(configs[0]);

  // Reference results from config 0; later configs must match bitwise.
  std::vector<std::vector<uint64_t>> ref_range(centers.size());
  std::vector<std::vector<std::pair<double, uint64_t>>> ref_knn(
      centers.size());
  bool identical = true;

  Measured m[3];
  SearchScratch scratch;
  std::vector<uint64_t> ids;
  std::vector<std::pair<double, uint64_t>> nn;

  for (size_t c = 0; c < n_configs; ++c) {
    const Config& cfg = configs[c];
    HybridTree* tree = cfg.quant ? tree_quant.get() : tree_plain.get();
    kernels::ForceTier(cfg.tier);

    // Warm-up (buffer pool, node cache, scratch, lazy sidecar builds).
    for (size_t q = 0; q < centers.size(); ++q) {
      HT_CHECK_OK(
          tree->SearchRangeInto(centers[q], radius[q], l2, &scratch, &ids));
      HT_CHECK_OK(tree->SearchKnnInto(centers[q], kKnnK, l2, &scratch, &nn));
    }

    // Identity check against the baseline config's answers. In --cursor
    // mode the bound-carrying cursor must reproduce them too.
    for (size_t q = 0; q < centers.size(); ++q) {
      HT_CHECK_OK(
          tree->SearchRangeInto(centers[q], radius[q], l2, &scratch, &ids));
      HT_CHECK_OK(tree->SearchKnnInto(centers[q], kKnnK, l2, &scratch, &nn));
      if (c == 0) {
        ref_range[q] = ids;
        ref_knn[q] = nn;
      } else if (ids != ref_range[q] || nn != ref_knn[q]) {
        identical = false;
      }
      if (cursor_mode) {
        CursorKnn(*tree, centers[q], l2, &nn);
        if (nn != ref_knn[q]) identical = false;
      }
    }

  }

  // Measured passes: kRounds round-robin rounds over the configs, keeping
  // each config's fastest round. Interleaving decorrelates slow machine
  // drift from the config order, and taking the best squeezes out
  // scheduler interference (which only ever slows a run) — the numbers
  // converge to each config's true speed on a shared host. The filter
  // counters are deterministic per round (stats window = one round's
  // queries), so the last round's snapshot is as good as any.
  constexpr int kRounds = 3;
  for (int r = 0; r < kRounds; ++r) {
    for (size_t c = 0; c < n_configs; ++c) {
      const Config& cfg = configs[c];
      HybridTree* tree = cfg.quant ? tree_quant.get() : tree_plain.get();
      kernels::ForceTier(cfg.tier);
      tree->pool().ResetStats();
      WallTimer rt;
      for (size_t q = 0; q < centers.size(); ++q) {
        HT_CHECK_OK(
            tree->SearchRangeInto(centers[q], radius[q], l2, &scratch, &ids));
      }
      const double rqps = static_cast<double>(centers.size()) / rt.Seconds();
      WallTimer kt;
      for (size_t q = 0; q < centers.size(); ++q) {
        HT_CHECK_OK(
            tree->SearchKnnInto(centers[q], kKnnK, l2, &scratch, &nn));
      }
      const double kqps = static_cast<double>(centers.size()) / kt.Seconds();
      if (rqps > m[c].range_qps) m[c].range_qps = rqps;
      if (kqps > m[c].knn_qps) m[c].knn_qps = kqps;
      if (cursor_mode) {
        WallTimer ct;
        for (size_t q = 0; q < centers.size(); ++q) {
          CursorKnn(*tree, centers[q], l2, &nn);
        }
        const double cqps =
            static_cast<double>(centers.size()) / ct.Seconds();
        if (cqps > m[c].cursor_qps) m[c].cursor_qps = cqps;
      }
      const IoStats s = tree->pool().StatsSnapshot();
      m[c].scan_points = s.scan_points;
      m[c].refined = s.quant_refined;
      m[c].pruned = s.quant_pruned;
      m[c].cursor_scan_points = s.cursor_scan_points;
      m[c].cursor_refined = s.cursor_quant_refined;
      m[c].cursor_pruned = s.cursor_quant_pruned;
    }
  }
  kernels::ClearForcedTier();

  std::printf("\nScan-heavy query throughput (%zu queries):\n",
              centers.size());
  TablePrinter table({"config", "range QPS", "knn QPS", "range speedup",
                      "knn speedup", "filter rate"});
  for (size_t c = 0; c < n_configs; ++c) {
    const double rate =
        m[c].scan_points > 0
            ? static_cast<double>(m[c].pruned) /
                  static_cast<double>(m[c].scan_points)
            : 0.0;
    table.AddRow({configs[c].name, TablePrinter::Num(m[c].range_qps, 0),
                  TablePrinter::Num(m[c].knn_qps, 0),
                  TablePrinter::Num(m[c].range_qps / m[0].range_qps, 2),
                  TablePrinter::Num(m[c].knn_qps / m[0].knn_qps, 2),
                  TablePrinter::Num(100.0 * rate, 1) + "%"});
  }
  table.Print();
  if (cursor_mode) {
    std::printf("\nCursor-path k-NN (limit=k bound-carrying cursor):\n");
    TablePrinter ctable({"config", "cursor knn QPS", "cursor speedup",
                         "cursor filter rate"});
    for (size_t c = 0; c < n_configs; ++c) {
      const double crate =
          m[c].cursor_scan_points > 0
              ? static_cast<double>(m[c].cursor_pruned) /
                    static_cast<double>(m[c].cursor_scan_points)
              : 0.0;
      ctable.AddRow({configs[c].name, TablePrinter::Num(m[c].cursor_qps, 0),
                     TablePrinter::Num(m[c].cursor_qps / m[0].cursor_qps, 2),
                     TablePrinter::Num(100.0 * crate, 1) + "%"});
    }
    ctable.Print();
  }
  std::printf(
      "simd+quant filter: %llu points scanned, %llu refined, %llu pruned\n",
      static_cast<unsigned long long>(m[2].scan_points),
      static_cast<unsigned long long>(m[2].refined),
      static_cast<unsigned long long>(m[2].pruned));
  std::printf("Cross-check: %s\n",
              identical ? "all configurations byte-identical"
                        : "RESULT MISMATCH (BUG)");

  FILE* json = std::fopen("BENCH_quant.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"quant\",\n"
        "  \"dataset\": \"fourier\",\n"
        "  \"dim\": %u,\n"
        "  \"n\": %zu,\n"
        "  \"queries\": %zu,\n"
        "  \"k\": %zu,\n"
        "  \"best_tier\": \"%s\",\n"
        "  \"range_qps\": {\"baseline\": %.1f, \"simd\": %.1f, "
        "\"simd_quant\": %.1f},\n"
        "  \"knn_qps\": {\"baseline\": %.1f, \"simd\": %.1f, "
        "\"simd_quant\": %.1f},\n"
        "  \"range_speedup\": {\"simd\": %.3f, \"simd_quant\": %.3f},\n"
        "  \"knn_speedup\": {\"simd\": %.3f, \"simd_quant\": %.3f},\n"
        "  \"filter\": {\"scan_points\": %llu, \"refined\": %llu, "
        "\"pruned\": %llu, \"prune_rate\": %.4f},\n"
        "  \"results_identical\": %s",
        kDim, n, centers.size(), kKnnK, kernels::TierName(best),
        m[0].range_qps, m[1].range_qps, m[2].range_qps, m[0].knn_qps,
        m[1].knn_qps, m[2].knn_qps, m[1].range_qps / m[0].range_qps,
        m[2].range_qps / m[0].range_qps, m[1].knn_qps / m[0].knn_qps,
        m[2].knn_qps / m[0].knn_qps,
        static_cast<unsigned long long>(m[2].scan_points),
        static_cast<unsigned long long>(m[2].refined),
        static_cast<unsigned long long>(m[2].pruned),
        m[2].scan_points > 0
            ? static_cast<double>(m[2].pruned) /
                  static_cast<double>(m[2].scan_points)
            : 0.0,
        identical ? "true" : "false");
    if (cursor_mode) {
      std::fprintf(
          json,
          ",\n"
          "  \"cursor\": {\n"
          "    \"knn_qps\": {\"baseline\": %.1f, \"simd\": %.1f, "
          "\"simd_quant\": %.1f},\n"
          "    \"knn_speedup\": {\"simd\": %.3f, \"simd_quant\": %.3f},\n"
          "    \"filter\": {\"scan_points\": %llu, \"refined\": %llu, "
          "\"pruned\": %llu, \"prune_rate\": %.4f}\n"
          "  }\n",
          m[0].cursor_qps, m[1].cursor_qps, m[2].cursor_qps,
          m[1].cursor_qps / m[0].cursor_qps,
          m[2].cursor_qps / m[0].cursor_qps,
          static_cast<unsigned long long>(m[2].cursor_scan_points),
          static_cast<unsigned long long>(m[2].cursor_refined),
          static_cast<unsigned long long>(m[2].cursor_pruned),
          m[2].cursor_scan_points > 0
              ? static_cast<double>(m[2].cursor_pruned) /
                    static_cast<double>(m[2].cursor_scan_points)
              : 0.0);
    } else {
      std::fprintf(json, "\n");
    }
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("Wrote BENCH_quant.json\n");
  }
  return identical ? 0 : 1;
}
