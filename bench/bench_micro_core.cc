// Micro-benchmarks of core primitives: distance metrics, box operations,
// node (de)serialization, buffer-pool access, and end-to-end hybrid-tree
// insert/search throughput at 64-d.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/hybrid_tree.h"
#include "data/generators.h"
#include "data/workload.h"
#include "geometry/metrics.h"

namespace ht {
namespace {

std::vector<float> RandomVec(uint32_t dim, Rng& rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.NextDouble());
  return v;
}

void BM_MetricDistance(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Rng rng(8200 + dim);
  auto a = RandomVec(dim, rng);
  auto b = RandomVec(dim, rng);
  std::unique_ptr<DistanceMetric> metric;
  switch (state.range(1)) {
    case 0: metric = std::make_unique<L1Metric>(); break;
    case 1: metric = std::make_unique<L2Metric>(); break;
    default: metric = std::make_unique<LpMetric>(3.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric->Distance(a, b));
  }
  state.SetLabel(metric->Name());
}
BENCHMARK(BM_MetricDistance)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({16, 1});

void BM_MinDistToBox(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Rng rng(8300 + dim);
  auto q = RandomVec(dim, rng);
  std::vector<float> lo(dim), hi(dim);
  for (uint32_t d = 0; d < dim; ++d) {
    auto a = static_cast<float>(rng.NextDouble());
    auto b = static_cast<float>(rng.NextDouble());
    lo[d] = std::min(a, b);
    hi[d] = std::max(a, b);
  }
  Box box = Box::FromBounds(lo, hi);
  L1Metric l1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1.MinDistToBox(q, box));
  }
}
BENCHMARK(BM_MinDistToBox)->Arg(16)->Arg(64);

void BM_DataNodeSerialize(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Rng rng(8400 + dim);
  DataNode node;
  const size_t cap = DataNode::Capacity(dim, 4096);
  for (size_t i = 0; i < cap; ++i) {
    node.entries.push_back(DataEntry{i, RandomVec(dim, rng)});
  }
  std::vector<uint8_t> page(4096);
  for (auto _ : state) {
    node.Serialize(page.data(), page.size(), dim);
    benchmark::DoNotOptimize(page.data());
  }
}
BENCHMARK(BM_DataNodeSerialize)->Arg(16)->Arg(64);

void BM_DataNodeDeserialize(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Rng rng(8500 + dim);
  DataNode node;
  const size_t cap = DataNode::Capacity(dim, 4096);
  for (size_t i = 0; i < cap; ++i) {
    node.entries.push_back(DataEntry{i, RandomVec(dim, rng)});
  }
  std::vector<uint8_t> page(4096);
  node.Serialize(page.data(), page.size(), dim);
  for (auto _ : state) {
    auto r = DataNode::Deserialize(page.data(), page.size(), dim);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DataNodeDeserialize)->Arg(16)->Arg(64);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  MemPagedFile file(4096);
  BufferPool pool(&file, 0);
  PageId id;
  {
    PageHandle h = pool.New().ValueOrDie();
    id = h.id();
    h.MarkDirty();
  }
  for (auto _ : state) {
    PageHandle h = pool.Fetch(id).ValueOrDie();
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchEvicting(benchmark::State& state) {
  MemPagedFile file(4096);
  BufferPool pool(&file, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    PageHandle h = pool.New().ValueOrDie();
    h.MarkDirty();
    ids.push_back(h.id());
  }
  size_t i = 0;
  for (auto _ : state) {
    PageHandle h = pool.Fetch(ids[i++ % ids.size()]).ValueOrDie();
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_BufferPoolFetchEvicting);

void BM_HybridInsert64d(benchmark::State& state) {
  Rng rng(8600);
  Dataset data = GenColhist(20000, 64, rng);
  MemPagedFile file(4096);
  HybridTreeOptions o;
  o.dim = 64;
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  size_t i = 0;
  for (auto _ : state) {
    HT_CHECK_OK(tree->Insert(data.Row(i % data.size()), i));
    ++i;
  }
}
BENCHMARK(BM_HybridInsert64d);

void BM_HybridBoxSearch64d(benchmark::State& state) {
  Rng rng(8700);
  Dataset data = GenColhist(10000, 64, rng);
  MemPagedFile file(4096);
  HybridTreeOptions o;
  o.dim = 64;
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(tree->Insert(data.Row(i), i));
  }
  std::vector<Box> queries;
  auto centers = MakeQueryCenters(data, 64, rng);
  for (const auto& c : centers) queries.push_back(MakeBoxQuery(c, 0.3));
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree->SearchBox(queries[q++ % queries.size()]).ValueOrDie());
  }
}
BENCHMARK(BM_HybridBoxSearch64d);

void BM_HybridKnn64d(benchmark::State& state) {
  Rng rng(8800);
  Dataset data = GenColhist(10000, 64, rng);
  MemPagedFile file(4096);
  HybridTreeOptions o;
  o.dim = 64;
  auto tree = HybridTree::Create(o, &file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(tree->Insert(data.Row(i), i));
  }
  auto centers = MakeQueryCenters(data, 64, rng);
  L1Metric l1;
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree->SearchKnn(centers[q++ % centers.size()], 10, l1).ValueOrDie());
  }
}
BENCHMARK(BM_HybridKnn64d);

}  // namespace
}  // namespace ht

BENCHMARK_MAIN();
