// Figure 5(c): effect of the Encoded Live Space optimization. Disk
// accesses per query as a function of the ELS precision (bits per
// boundary) for 16/32/64-d COLHIST. The paper's finding: 4 bits already
// eliminate most dead space; more bits barely help. Also verifies the §3.4
// claim that the memory-resident ELS overhead is a small fraction of the
// database size.

#include "bench_common.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 20000);
  const size_t n_queries = Queries();
  PrintHeader("Figure 5(c): ELS precision sweep",
              "Chakrabarti & Mehrotra, ICDE 1999, Figure 5(c)",
              "COLHIST surrogate, n=" + std::to_string(n) +
                  ", selectivity=0.2%, queries=" + std::to_string(n_queries));

  const std::vector<uint32_t> bit_settings = {0, 2, 4, 8, 12, 16};
  std::vector<std::string> headers = {"bits/boundary"};
  for (uint32_t dim : {16u, 32u, 64u}) {
    headers.push_back(std::to_string(dim) + "-d accesses");
  }
  headers.push_back("ELS overhead %% (64-d)");
  TablePrinter table(headers);

  for (uint32_t bits : bit_settings) {
    std::vector<std::string> row = {std::to_string(bits)};
    std::string overhead = "-";
    for (uint32_t dim : {16u, 32u, 64u}) {
      Rng rng(7100 + dim);  // same data per dim across bit settings
      Dataset data = GenColhist(n, dim, rng);
      data.NormalizeUnitCube();
      BoxWorkload w =
          MakeBoxWorkload(data, kColhistSelectivity, n_queries, rng);
      BuildConfig config;
      config.expected_query_side = w.side;
      config.els_bits = bits;
      const IndexKind kind =
          bits == 0 ? IndexKind::kHybridNoEls : IndexKind::kHybrid;
      auto bundle = BuildIndex(kind, data, config);
      HT_CHECK_OK(bundle.status());
      auto costs = RunBoxWorkload(bundle.ValueOrDie().index.get(), w.queries);
      HT_CHECK_OK(costs.status());
      row.push_back(TablePrinter::Num(costs.ValueOrDie().avg_accesses, 1));
      if (dim == 64) {
        auto* hybrid = dynamic_cast<HybridIndexAdapter*>(
            bundle.ValueOrDie().index.get());
        auto stats = hybrid->tree().ComputeStats();
        HT_CHECK_OK(stats.status());
        const double data_bytes =
            static_cast<double>(n) * 64 * sizeof(float);
        overhead = TablePrinter::Num(
            100.0 * stats.ValueOrDie().els_sidecar_bytes / data_bytes, 3);
      }
    }
    row.push_back(overhead);
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "Expected shape: steep drop to a knee at 4-8 bits, then a plateau "
      "(paper Figure 5(c); our node-local references shift the knee ~2 bits "
      "up). Sidecar overhead is ~2.6%% at 4 bits with 4 KiB pages — the "
      "paper's <1%% figure assumes 8 KiB pages.\n");
  return 0;
}
