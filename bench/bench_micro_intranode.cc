// Micro-benchmark for the paper's §3.1 claim that kd-tree-based intra-node
// search beats scanning an "array of BRs": searching a balanced kd-tree
// costs O(log n) comparisons and each boundary is checked once, while the
// array representation checks every child's box (boundaries tested
// redundantly).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/node.h"
#include "data/workload.h"

namespace ht {
namespace {

/// Balanced kd-tree over 2^depth children, splitting the unit cube on
/// round-robin dimensions.
std::unique_ptr<KdNode> BuildBalanced(uint32_t dim, int depth, const Box& br,
                                      uint32_t d, PageId* next_child) {
  if (depth == 0) {
    return KdNode::MakeLeaf((*next_child)++);
  }
  const float mid = br.lo(d) + (br.hi(d) - br.lo(d)) / 2;
  Box left = br;
  left.set_hi(d, mid);
  Box right = br;
  right.set_lo(d, mid);
  const uint32_t nd = (d + 1) % dim;
  return KdNode::MakeInternal(
      d, mid, mid, BuildBalanced(dim, depth - 1, left, nd, next_child),
      BuildBalanced(dim, depth - 1, right, nd, next_child));
}

struct Fixture {
  IndexNode node;
  std::vector<Box> child_brs;  // the "array of BRs" representation
  std::vector<Box> queries;
  uint32_t dim;

  Fixture(uint32_t dim_in, int depth) : dim(dim_in) {
    PageId next = 1;
    node.level = 1;
    node.root = BuildBalanced(dim, depth, Box::UnitCube(dim), 0, &next);
    std::vector<ChildRef> kids;
    node.CollectChildren(Box::UnitCube(dim), &kids);
    for (const auto& kid : kids) child_brs.push_back(kid.kd_br);
    Rng rng(8000 + dim + depth);
    for (int q = 0; q < 64; ++q) {
      std::vector<float> c(dim);
      for (auto& v : c) v = static_cast<float>(rng.NextDouble());
      queries.push_back(MakeBoxQuery(c, 0.15));
    }
  }
};

size_t KdSearch(const KdNode* n, const Box& q) {
  if (n->IsLeaf()) return 1;
  size_t hits = 0;
  if (q.lo(n->split_dim) <= n->lsp) hits += KdSearch(n->left.get(), q);
  if (q.hi(n->split_dim) >= n->rsp) hits += KdSearch(n->right.get(), q);
  return hits;
}

void BM_IntranodeKdTree(benchmark::State& state) {
  Fixture f(static_cast<uint32_t>(state.range(0)),
            static_cast<int>(state.range(1)));
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        KdSearch(f.node.root.get(), f.queries[qi++ % f.queries.size()]));
  }
  state.SetLabel(std::to_string(f.child_brs.size()) + " children");
}

void BM_IntranodeArrayScan(benchmark::State& state) {
  Fixture f(static_cast<uint32_t>(state.range(0)),
            static_cast<int>(state.range(1)));
  size_t qi = 0;
  for (auto _ : state) {
    const Box& q = f.queries[qi++ % f.queries.size()];
    size_t hits = 0;
    for (const Box& br : f.child_brs) {
      if (q.Intersects(br)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(std::to_string(f.child_brs.size()) + " children");
}

// Args: {dimensionality, kd depth} -> 2^depth children.
BENCHMARK(BM_IntranodeKdTree)
    ->Args({16, 5})
    ->Args({16, 7})
    ->Args({64, 5})
    ->Args({64, 7});
BENCHMARK(BM_IntranodeArrayScan)
    ->Args({16, 5})
    ->Args({16, 7})
    ->Args({64, 5})
    ->Args({64, 7});

}  // namespace
}  // namespace ht

BENCHMARK_MAIN();
