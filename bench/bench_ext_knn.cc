// Extension (paper §5 future work): k-NN and approximate k-NN. Compares
// hybrid tree vs SR-tree vs scan on exact k-NN (L1, following the paper's
// distance-query setup), then sweeps the (1+epsilon) approximation knob.

#include <set>

#include "bench_common.h"
#include "core/bulk_load.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 20000);
  const size_t n_queries = Queries();
  const size_t k = 10;
  PrintHeader("Extension: k-NN and approximate k-NN",
              "paper §5 future work: \"support new types of queries like "
              "approximate nearest neighbor queries\"",
              "COLHIST surrogate 64-d, n=" + std::to_string(n) + ", k=" +
                  std::to_string(k) + ", L1 metric, queries=" +
                  std::to_string(n_queries));

  Rng rng(8000);
  Dataset data = GenColhist(n, 64, rng);
  data.NormalizeUnitCube();
  auto centers = MakeQueryCenters(data, n_queries, rng);
  L1Metric l1;
  BuildConfig config;

  std::printf("\nExact %zu-NN:\n", k);
  TablePrinter exact({"structure", "accesses/query", "CPU (us)/query"});
  for (IndexKind kind :
       {IndexKind::kHybrid, IndexKind::kSrTree, IndexKind::kSeqScan}) {
    auto b = BuildIndex(kind, data, config).ValueOrDie();
    auto costs = RunKnnWorkload(b.index.get(), centers, k, l1).ValueOrDie();
    exact.AddRow({IndexKindName(kind),
                  TablePrinter::Num(costs.avg_accesses, 1),
                  TablePrinter::Num(costs.avg_cpu_seconds * 1e6, 1)});
  }
  exact.Print();

  std::printf("\nApproximate %zu-NN on the hybrid tree (epsilon sweep):\n", k);
  TablePrinter approx({"epsilon", "accesses/query", "avg dist ratio",
                       "recall@10"});
  auto bundle = BuildIndex(IndexKind::kHybrid, data, config).ValueOrDie();
  auto* hybrid = dynamic_cast<HybridIndexAdapter*>(bundle.index.get());
  for (double eps : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    uint64_t accesses = 0;
    double ratio_sum = 0.0;
    double recall_sum = 0.0;
    for (const auto& c : centers) {
      auto want = BruteForceKnn(data, c, k, l1);
      hybrid->pool().ResetStats();
      auto got = hybrid->tree().SearchKnnApprox(c, k, l1, eps).ValueOrDie();
      accesses += hybrid->pool().stats().logical_reads;
      size_t hit = 0;
      double ratio = 0.0;
      for (size_t i = 0; i < got.size(); ++i) {
        ratio += want[i].first > 0 ? got[i].first / want[i].first : 1.0;
      }
      std::set<uint64_t> truth;
      for (auto& [d, id] : want) truth.insert(id);
      for (auto& [d, id] : got) {
        if (truth.count(id)) ++hit;
      }
      ratio_sum += ratio / static_cast<double>(got.size());
      recall_sum += static_cast<double>(hit) / static_cast<double>(k);
    }
    const double nq = static_cast<double>(centers.size());
    approx.AddRow({TablePrinter::Num(eps, 2),
                   TablePrinter::Num(static_cast<double>(accesses) / nq, 1),
                   TablePrinter::Num(ratio_sum / nq, 3),
                   TablePrinter::Num(recall_sum / nq, 3)});
  }
  approx.Print();
  std::printf(
      "Expected shape: accesses fall monotonically with epsilon while the "
      "distance ratio stays well under the (1+epsilon) bound and recall "
      "degrades gracefully.\n");
  return 0;
}
