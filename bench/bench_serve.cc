// Extension (beyond the paper): the sharded multi-tenant serving layer.
//
// Rig: FOURIER 16-d sharded over a ShardedIndex (kd-region partitioner)
// behind a Server, driven by a CLOSED-LOOP multi-tenant load generator —
// every client thread issues its next request the moment the previous
// one returns, so offered load tracks capacity and the admission tiers
// are what shape each tenant's outcome mix:
//
//   gold    2 clients, no quota, generous deadline  -> completes
//   silver  1 client, token-bucket rate limit       -> quota rejections
//   edge    1 client, microsecond deadline budget   -> deadline expiry
//
// The run demonstrates the three outcome classes side by side — the
// same closed loop yields completed for gold, ResourceExhausted
// rejections for silver past its rate, and DeadlineExceeded expiry for
// edge — with per-tenant percentiles and per-shard serving I/O from the
// live MetricsSnapshot.
//
// Identity gate (both modes): scatter-gather answers through the full
// server path are cross-checked against a single unsharded tree
// (canonical order: box/range ids ascending, k-NN by (distance, id));
// the process exits nonzero on any mismatch, so CI's --smoke run is an
// end-to-end correctness check, not just a perf printout.
//
// Usage: bench_serve [--smoke]   (--smoke: tiny run for CI)
// Env:   HT_BENCH_N              dataset size       (default 20000)
//        HT_BENCH_SERVE_REQUESTS closed-loop total  (default 1000000)
//        HT_BENCH_SERVE_SHARDS   shard count        (default 4)
//        HT_BENCH_SERVE_POOL     scatter pool size  (default 2)

#include "bench_common.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/timing.h"
#include "core/bulk_load.h"
#include "core/hybrid_tree.h"
#include "exec/thread_pool.h"
#include "serve/server.h"
#include "serve/sharded_index.h"

using namespace ht;
using namespace ht::bench;

namespace {

/// Pre-built query mix: ~70% k-NN, 20% box, 10% range (k-NN is the
/// serving-relevant workload; box/range keep all three scatter paths hot).
struct LoadSet {
  std::vector<Query> queries;
  L2Metric metric;
};

LoadSet MakeLoadSet(const Dataset& data, size_t n_queries, Rng& rng) {
  LoadSet set;
  const double side = CalibrateBoxSide(data, 0.001, 10, rng);
  const double radius = CalibrateRangeRadius(data, set.metric, 0.001, 10, rng);
  auto centers = MakeQueryCenters(data, n_queries, rng);
  set.queries.reserve(centers.size());
  for (size_t i = 0; i < centers.size(); ++i) {
    if (i % 10 < 7) {
      set.queries.push_back(Query::MakeKnn(centers[i], 10));
    } else if (i % 10 < 9) {
      set.queries.push_back(Query::MakeBox(MakeBoxQuery(centers[i], side)));
    } else {
      set.queries.push_back(Query::MakeRange(centers[i], radius));
    }
  }
  return set;
}

/// One closed-loop tenant tier.
struct Tier {
  std::string tenant;
  size_t clients = 1;
  double deadline_seconds = 0.0;
  bool has_quota = false;
  TenantQuota quota;
};

/// Full-path identity gate: every query type through Server::Execute vs
/// the unsharded reference tree, canonicalized identically.
bool CheckIdentity(Server& server, const HybridTree& reference,
                   const LoadSet& set) {
  bool ok = true;
  for (const Query& q : set.queries) {
    Request req;
    req.tenant = "identity-check";
    req.query = q;
    req.metric = &set.metric;
    QueryResult got = server.Execute(req);
    if (!got.status.ok()) {
      std::printf("identity check: query failed: %s\n",
                  got.status.ToString().c_str());
      ok = false;
      continue;
    }
    switch (q.type) {
      case Query::Type::kBox: {
        auto want = reference.SearchBox(q.box).ValueOrDie();
        std::sort(want.begin(), want.end());
        if (got.ids != want) ok = false;
        break;
      }
      case Query::Type::kRange: {
        auto want =
            reference.SearchRange(q.center, q.radius, set.metric).ValueOrDie();
        std::sort(want.begin(), want.end());
        if (got.ids != want) ok = false;
        break;
      }
      case Query::Type::kKnn: {
        auto want = reference.SearchKnn(q.center, q.k, set.metric).ValueOrDie();
        std::sort(want.begin(), want.end());
        if (got.neighbors != want) ok = false;
        break;
      }
    }
  }
  return ok;
}

std::string Us(double seconds) { return TablePrinter::Num(seconds * 1e6, 1); }

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const uint32_t dim = 16;
  const size_t n = smoke ? 4000 : EnvSize("HT_BENCH_N", 20000);
  const size_t total_requests =
      smoke ? 4000 : EnvSize("HT_BENCH_SERVE_REQUESTS", 1000000);
  const size_t shards = EnvSize("HT_BENCH_SERVE_SHARDS", 4);
  const size_t pool_threads = EnvSize("HT_BENCH_SERVE_POOL", 2);
  const size_t n_queries = smoke ? 200 : 2000;

  PrintHeader(
      "Extension: sharded multi-tenant serving layer",
      "beyond the paper: scatter-gather + admission control (src/serve)",
      "FOURIER 16-d, n=" + std::to_string(n) + ", " + std::to_string(shards) +
          " shards, pool=" + std::to_string(pool_threads) + ", closed-loop " +
          std::to_string(total_requests) + " requests" +
          (smoke ? " [smoke]" : ""));

  Rng rng(20260809);
  Dataset data = GenFourier(n, dim, rng);
  HybridTreeOptions opts;
  opts.dim = dim;

  // Unsharded reference for the identity gate.
  MemPagedFile ref_file(opts.page_size);
  auto reference = BulkLoad(opts, &ref_file, data, BulkLoadOptions{}).ValueOrDie();

  ThreadPool pool(pool_threads);
  ShardedIndexOptions shard_opts;
  shard_opts.shards = shards;
  WallTimer build_timer;
  auto index = ShardedIndex::Build(opts, shard_opts, data, &pool).ValueOrDie();
  const double build_s = build_timer.Seconds();
  std::printf("\nSharded build: %zu shards in %.3f s (rows/shard:",
              index->shards(), build_s);
  for (size_t s = 0; s < index->shards(); ++s) {
    std::printf(" %zu", index->shard_rows(s));
  }
  std::printf(")\n");

  LoadSet set = MakeLoadSet(data, n_queries, rng);
  Server server(index.get());

  // Tenant tiers (see file comment). Silver's bucket refills at a rate the
  // closed loop can outrun on any host, so rejections are guaranteed;
  // edge's budget is below a scatter's wall time, so expiry is too.
  std::vector<Tier> tiers;
  {
    Tier gold;
    gold.tenant = "gold";
    gold.clients = 2;
    gold.deadline_seconds = 0.25;
    tiers.push_back(gold);

    Tier silver;
    silver.tenant = "silver";
    silver.clients = 1;
    silver.deadline_seconds = 0.25;
    silver.has_quota = true;
    silver.quota.rate_qps = 500.0;
    silver.quota.burst = 64.0;
    tiers.push_back(silver);

    Tier edge;
    edge.tenant = "edge";
    edge.clients = 1;
    edge.deadline_seconds = 20e-6;
    tiers.push_back(edge);
  }
  for (const Tier& tier : tiers) {
    if (tier.has_quota) server.SetQuota(tier.tenant, tier.quota);
  }

  // Identity gate BEFORE the load (counters reset afterwards).
  const bool identical = CheckIdentity(server, *reference, set);
  std::printf("Identity vs unsharded tree (%zu queries, full server path): "
              "%s\n",
              set.queries.size(), identical ? "identical" : "MISMATCH (BUG)");
  server.ResetMetrics();

  // Closed loop: every client re-issues immediately; a shared countdown
  // caps the run at total_requests across all tenants. Signed so the
  // final concurrent decrements go negative instead of wrapping.
  std::atomic<long long> remaining{static_cast<long long>(total_requests)};
  std::vector<std::thread> clients;
  WallTimer load_timer;
  size_t client_id = 0;
  for (const Tier& tier : tiers) {
    for (size_t c = 0; c < tier.clients; ++c, ++client_id) {
      clients.emplace_back([&, tier, client_id] {
        size_t i = client_id;  // de-phase clients across the query mix
        while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
          Request req;
          req.tenant = tier.tenant;
          req.query = set.queries[i % set.queries.size()];
          req.metric = &set.metric;
          req.deadline_seconds = tier.deadline_seconds;
          (void)server.Execute(req);
          ++i;
        }
      });
    }
  }
  for (auto& t : clients) t.join();
  const double load_s = load_timer.Seconds();

  MetricsSnapshot snap = server.Snapshot();
  std::printf("\nClosed loop: %zu requests over %zu clients in %.2f s "
              "(%.0f req/s aggregate)\n",
              total_requests, clients.size(), load_s,
              static_cast<double>(total_requests) / load_s);
  TablePrinter table({"tenant", "admitted", "completed", "rejected", "expired",
                      "qps", "p50 (us)", "p95 (us)", "p99 (us)"});
  uint64_t total_completed = 0, total_rejected = 0, total_expired = 0;
  for (const TenantMetrics& t : snap.tenants) {
    table.AddRow({t.tenant, std::to_string(t.admitted),
                  std::to_string(t.completed), std::to_string(t.rejected),
                  std::to_string(t.expired), TablePrinter::Num(t.qps, 0),
                  Us(t.latency.p50), Us(t.latency.p95), Us(t.latency.p99)});
    total_completed += t.completed;
    total_rejected += t.rejected;
    total_expired += t.expired;
  }
  table.Print();
  std::printf("Outcome classes: %llu completed, %llu rejected (quota), "
              "%llu expired (deadline) — all three %s.\n",
              static_cast<unsigned long long>(total_completed),
              static_cast<unsigned long long>(total_rejected),
              static_cast<unsigned long long>(total_expired),
              total_completed > 0 && total_rejected > 0 && total_expired > 0
                  ? "observable"
                  : "NOT all observable (unexpected on this sizing)");

  std::printf("\nPer-shard serving I/O (logical reads / batch trips / "
              "prefetch issued):\n");
  TablePrinter io_table({"shard", "rows", "logical", "batch", "prefetch"});
  for (size_t s = 0; s < snap.per_shard_io.size(); ++s) {
    const IoStats& io = snap.per_shard_io[s];
    io_table.AddRow({std::to_string(s), std::to_string(index->shard_rows(s)),
                     std::to_string(io.logical_reads),
                     std::to_string(io.batch_reads),
                     std::to_string(io.prefetch_issued)});
  }
  io_table.Print();

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"serve\",\n"
                 "  \"dataset\": \"fourier\",\n"
                 "  \"dim\": %u,\n"
                 "  \"n\": %zu,\n"
                 "  \"shards\": %zu,\n"
                 "  \"pool_threads\": %zu,\n"
                 "  \"smoke\": %s,\n"
                 "  \"identical_to_unsharded\": %s,\n"
                 "  \"build_s\": %.4f,\n"
                 "  \"requests\": %zu,\n"
                 "  \"clients\": %zu,\n"
                 "  \"load_s\": %.4f,\n"
                 "  \"aggregate_req_per_s\": %.1f,\n"
                 "  \"completed\": %llu,\n"
                 "  \"rejected\": %llu,\n"
                 "  \"expired\": %llu,\n"
                 "  \"tenants\": [\n",
                 dim, n, shards, pool_threads, smoke ? "true" : "false",
                 identical ? "true" : "false", build_s, total_requests,
                 clients.size(), load_s,
                 static_cast<double>(total_requests) / load_s,
                 static_cast<unsigned long long>(total_completed),
                 static_cast<unsigned long long>(total_rejected),
                 static_cast<unsigned long long>(total_expired));
    for (size_t i = 0; i < snap.tenants.size(); ++i) {
      const TenantMetrics& t = snap.tenants[i];
      std::fprintf(
          json,
          "    {\"tenant\": \"%s\", \"admitted\": %llu, "
          "\"completed\": %llu, \"rejected\": %llu, \"expired\": %llu, "
          "\"cancelled\": %llu, \"failed\": %llu, \"qps\": %.1f, "
          "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}%s\n",
          t.tenant.c_str(), static_cast<unsigned long long>(t.admitted),
          static_cast<unsigned long long>(t.completed),
          static_cast<unsigned long long>(t.rejected),
          static_cast<unsigned long long>(t.expired),
          static_cast<unsigned long long>(t.cancelled),
          static_cast<unsigned long long>(t.failed), t.qps,
          t.latency.p50 * 1e6, t.latency.p95 * 1e6, t.latency.p99 * 1e6,
          i + 1 < snap.tenants.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"per_shard_io\": [\n");
    for (size_t s = 0; s < snap.per_shard_io.size(); ++s) {
      const IoStats& io = snap.per_shard_io[s];
      std::fprintf(json,
                   "    {\"shard\": %zu, \"rows\": %zu, "
                   "\"logical_reads\": %llu, \"batch_reads\": %llu, "
                   "\"prefetch_issued\": %llu, \"prefetch_hits\": %llu}%s\n",
                   s, index->shard_rows(s),
                   static_cast<unsigned long long>(io.logical_reads),
                   static_cast<unsigned long long>(io.batch_reads),
                   static_cast<unsigned long long>(io.prefetch_issued),
                   static_cast<unsigned long long>(io.prefetch_hits),
                   s + 1 < snap.per_shard_io.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("Wrote BENCH_serve.json\n");
  }
  return identical ? 0 : 1;
}
