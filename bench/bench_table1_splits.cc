// Tables 1 & 2: the paper's qualitative comparison of splitting strategies
// and structural properties, reproduced as *measured* statistics on trees
// built over the same data: fanout (and its dependence on dimensionality),
// overlap, utilization guarantee, cascading splits (KDB), and storage
// redundancy (hB).

#include "baselines/hb_tree.h"
#include "baselines/kdb_tree.h"
#include "baselines/rstar_tree.h"
#include "baselines/x_tree.h"
#include "bench_common.h"

using namespace ht;
using namespace ht::bench;

namespace {

template <typename Tree>
std::unique_ptr<Tree> Build(const Dataset& data, MemPagedFile* file) {
  auto tree = Tree::Create(data.dim(), file).ValueOrDie();
  for (size_t i = 0; i < data.size(); ++i) {
    HT_CHECK_OK(tree->Insert(data.Row(i), i));
  }
  return tree;
}

}  // namespace

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 20000);
  PrintHeader("Tables 1 & 2: splitting strategies, measured",
              "Chakrabarti & Mehrotra, ICDE 1999, Table 1 and Table 2",
              "COLHIST surrogate, n=" + std::to_string(n) +
                  ", page=4096, per-dimensionality fanout shown for 16/64-d");

  TablePrinter table({"structure", "dim", "avg fanout", "avg data util",
                      "min data util", "overlap", "cascading splits",
                      "storage redundancy"});

  for (uint32_t dim : {16u, 64u}) {
    Rng rng(7800 + dim);
    Dataset data = GenColhist(n, dim, rng);
    data.NormalizeUnitCube();  // paper §3.2: normalized feature space

    {  // Hybrid tree.
      MemPagedFile file(4096);
      HybridTreeOptions o;
      o.dim = dim;
      o.page_size = 4096;
      auto tree = HybridIndexAdapter::Create(o, &file).ValueOrDie();
      for (size_t i = 0; i < data.size(); ++i) {
        HT_CHECK_OK(tree->Insert(data.Row(i), i));
      }
      TreeStats s = tree->tree().ComputeStats().ValueOrDie();
      const double overlap_pct =
          s.kd_internal_nodes
              ? 100.0 * static_cast<double>(s.overlapping_kd_splits) /
                    static_cast<double>(s.kd_internal_nodes)
              : 0.0;
      table.AddRow({"Hybrid tree", std::to_string(dim),
                    TablePrinter::Num(s.avg_index_fanout, 1),
                    TablePrinter::Num(s.avg_data_utilization, 2),
                    TablePrinter::Num(s.min_data_utilization, 2),
                    TablePrinter::Num(overlap_pct, 1) + "% of kd splits",
                    "none", "none"});
    }
    {  // KDB-tree.
      MemPagedFile file(4096);
      auto tree = Build<KdbTree>(data, &file);
      KdbStats s = tree->ComputeStats().ValueOrDie();
      table.AddRow(
          {"KDB-tree", std::to_string(dim),
           TablePrinter::Num(s.avg_index_fanout, 1),
           TablePrinter::Num(s.avg_data_utilization, 2),
           TablePrinter::Num(s.min_data_utilization, 2), "none",
           std::to_string(s.cascading_splits) + " (+" +
               std::to_string(s.empty_data_nodes) + " empty nodes)",
           "none"});
    }
    {  // hB-tree.
      MemPagedFile file(4096);
      auto tree = Build<HbTree>(data, &file);
      HbStats s = tree->ComputeStats().ValueOrDie();
      table.AddRow({"hB-tree", std::to_string(dim),
                    TablePrinter::Num(s.avg_index_fanout, 1),
                    TablePrinter::Num(s.avg_data_utilization, 2),
                    TablePrinter::Num(s.min_data_utilization, 2), "none",
                    "none",
                    std::to_string(s.redundant_refs) + " extra refs, " +
                        std::to_string(s.multi_parent_nodes) +
                        " multi-parent nodes"});
    }
    {  // R*-tree.
      MemPagedFile file(4096);
      auto tree = Build<RStarTree>(data, &file);
      RStarStats s = tree->ComputeStats().ValueOrDie();
      table.AddRow({"R-tree (R*)", std::to_string(dim),
                    TablePrinter::Num(s.avg_index_fanout, 1),
                    TablePrinter::Num(s.avg_leaf_utilization, 2), "-",
                    TablePrinter::Num(100.0 * s.avg_sibling_overlap, 1) +
                        "% sibling pairs intersect",
                    "none", "none"});
    }
    {  // X-tree (extra DP reference from the paper's §2 discussion).
      MemPagedFile file(4096);
      auto tree = Build<XTree>(data, &file);
      XTreeStats s = tree->ComputeStats().ValueOrDie();
      table.AddRow({"X-tree", std::to_string(dim),
                    TablePrinter::Num(s.avg_dir_fanout, 1), "-", "-",
                    "low (supernodes instead)",
                    std::to_string(s.supernodes) + " supernodes (max " +
                        std::to_string(s.max_chain_pages) + " pages)",
                    "none"});
    }
  }
  table.Print();
  std::printf(
      "Expected shape (Table 1): hybrid/KDB/hB fanout roughly independent "
      "of dimensionality; R-tree fanout collapses ~4x from 16-d to 64-d; "
      "KDB shows cascades/empty nodes (no utilization guarantee); hB shows "
      "storage redundancy; hybrid keeps utilization with low overlap.\n");
  return 0;
}
