// Tentpole bench (beyond the paper): scan-resistant caching. The paper
// counts logical accesses; production serving mixes point/box queries
// (small hot working set, heavy reuse) with maintenance scans (ScanAll,
// stats, rebuilds) that touch every page exactly once. A pure-LRU buffer
// pool collapses under that mix: each scan's one-touch pages displace the
// entire hot query set, so every query after a scan starts cold. The
// segmented policy (CachePolicy::kSlru) tags accesses by class, promotes
// only re-referenced pages into the protected segment, and lets scan
// traffic churn probation only — the hot set survives every sweep.
//
// Rig: a uniform 16-d tree is bulk-loaded into a MemPagedFile; the pool is
// then capped at ~50% of the file (SetCapacity — the CacheManager's knob)
// so neither policy can just cache everything. The measured loop strictly
// alternates hot box queries (each a small box around one of a fixed set
// of data points, so together they re-touch the same bounded set of
// leaves — a working set that fits the protected segment at any n) with
// full ScanAlls.
// Reported per policy: query-/scan-class hit rates and per-class eviction
// counts (IoStats), plus an FNV-1a hash of every result list — both
// policies MUST return byte-identical results; the policy may only move
// I/O counts, never answers.
//
// Acceptance (full run): SLRU query-class hit rate >= 3x LRU, identical
// results. --smoke (CI) gates identity only, on a tiny instance.
//
// Usage: bench_cache [--smoke]
// Env:   HT_BENCH_N (see bench_common.h)

#include "bench_common.h"

#include <cstring>
#include <string>
#include <vector>

#include "core/bulk_load.h"
#include "core/hybrid_tree.h"

using namespace ht;
using namespace ht::bench;

namespace {

struct PolicyCell {
  const char* name = "";
  double query_hit_rate = 0.0;
  double scan_hit_rate = 0.0;
  uint64_t query_hits = 0;
  uint64_t query_misses = 0;
  uint64_t scan_hits = 0;
  uint64_t scan_misses = 0;
  uint64_t evict_query = 0;
  uint64_t evict_scan = 0;
  uint64_t evict_ingest = 0;
  uint64_t result_hash = 0;
  uint64_t result_rows = 0;
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t n = smoke ? 8000 : EnvSize("HT_BENCH_N", 40000);
  const uint32_t dim = 16;
  const size_t n_queries = smoke ? 6 : 48;
  const size_t rounds = smoke ? 1 : 2;

  PrintHeader("Cache policy: segmented LRU vs pure LRU under scan+query mix",
              "repository extension (paper counts accesses; this bench "
              "makes them hit or miss)",
              "uniform, n=" + std::to_string(n) + ", dim=" +
                  std::to_string(dim) + ", pool=50% of file, " +
                  std::to_string(n_queries) + " hot queries x " +
                  std::to_string(rounds) + " rounds, 1 ScanAll per query" +
                  (smoke ? " [smoke]" : ""));

  // The data is identical per policy (fixed seed), so queries built from
  // it are too.
  Rng rng(777);
  Dataset data = GenUniform(n, dim, rng);

  // The hot queries: small boxes around a fixed sample of data points.
  // Each touches its point's leaf (plus the root-leaf index path), so the
  // combined working set is a bounded handful of pages at any n — it
  // fits in the protected segment (~80% of the pool) by construction,
  // unlike a half-space query whose page footprint grows with the tree.
  Rng qrng(20260809);
  std::vector<Box> queries;
  for (size_t i = 0; i < n_queries; ++i) {
    const auto row = data.Row(qrng.NextBelow(data.size()));
    Box b = Box::FromPoint(row);
    for (uint32_t d = 0; d < dim; ++d) {
      b.set_lo(d, b.lo(d) - 0.02f);
      b.set_hi(d, b.hi(d) + 0.02f);
    }
    queries.push_back(std::move(b));
  }

  TablePrinter table({"policy", "query hits", "query misses", "query HR",
                      "scan HR", "evict q/s/i", "results"});
  std::vector<PolicyCell> cells;
  size_t pool_pages = 0;

  for (const CachePolicy policy : {CachePolicy::kLru, CachePolicy::kSlru}) {
    HybridTreeOptions o;
    o.dim = dim;
    o.cache_policy = policy;
    MemPagedFile file(o.page_size);
    auto tree = BulkLoad(o, &file, data).ValueOrDie();

    // Cap the pool at half the file (the CacheManager's SetCapacity knob),
    // drop build-time residue, and zero the counters.
    pool_pages = std::max<size_t>(8, file.page_count() / 2);
    HT_CHECK_OK(tree->pool().SetCapacity(pool_pages));
    HT_CHECK_OK(tree->pool().EvictAll());
    tree->pool().ResetStats();

    // Warmup pass: promote the hot set (kSlru needs one re-reference;
    // kLru just fills), then one scan so both policies start from the
    // same post-scan state.
    for (int w = 0; w < 2; ++w) {
      for (const Box& q : queries) (void)tree->SearchBox(q).ValueOrDie();
    }
    uint64_t scan_rows = 0;
    HT_CHECK_OK(tree->ScanAll(
        [&](uint64_t, std::span<const float>) { ++scan_rows; }));

    // Measured mixed loop: strict query/scan alternation — the LRU
    // worst case (every scan wipes the pool before the next query).
    tree->pool().ResetStats();
    PolicyCell cell;
    cell.name = policy == CachePolicy::kLru ? "lru" : "slru";
    cell.result_hash = 1469598103934665603ULL;  // FNV offset basis
    for (size_t r = 0; r < rounds; ++r) {
      for (const Box& q : queries) {
        auto ids = tree->SearchBox(q).ValueOrDie();
        cell.result_rows += ids.size();
        for (uint64_t id : ids) cell.result_hash = Fnv1a(cell.result_hash, id);
        uint64_t rows = 0;
        HT_CHECK_OK(tree->ScanAll(
            [&](uint64_t, std::span<const float>) { ++rows; }));
        cell.result_hash = Fnv1a(cell.result_hash, rows);
      }
    }

    const IoStats stats = tree->pool().stats();
    const size_t q = static_cast<size_t>(AccessClass::kQuery);
    const size_t s = static_cast<size_t>(AccessClass::kScan);
    const size_t ing = static_cast<size_t>(AccessClass::kIngest);
    cell.query_hits = stats.class_hits[q];
    cell.query_misses = stats.class_misses[q];
    cell.scan_hits = stats.class_hits[s];
    cell.scan_misses = stats.class_misses[s];
    cell.query_hit_rate = stats.ClassHitRate(AccessClass::kQuery);
    cell.scan_hit_rate = stats.ClassHitRate(AccessClass::kScan);
    cell.evict_query = stats.class_evictions[q];
    cell.evict_scan = stats.class_evictions[s];
    cell.evict_ingest = stats.class_evictions[ing];

    table.AddRow({cell.name, std::to_string(cell.query_hits),
                  std::to_string(cell.query_misses),
                  TablePrinter::Num(cell.query_hit_rate, 3),
                  TablePrinter::Num(cell.scan_hit_rate, 3),
                  std::to_string(cell.evict_query) + "/" +
                      std::to_string(cell.evict_scan) + "/" +
                      std::to_string(cell.evict_ingest),
                  std::to_string(cell.result_rows)});
    cells.push_back(cell);
  }
  table.Print();

  const PolicyCell& lru = cells[0];
  const PolicyCell& slru = cells[1];
  const bool identical = lru.result_hash == slru.result_hash &&
                         lru.result_rows == slru.result_rows;
  const double ratio = slru.query_hit_rate /
                       std::max(lru.query_hit_rate, 1e-9);
  std::printf("Results %s across policies (FNV %016llx vs %016llx).\n",
              identical ? "byte-identical" : "MISMATCH (BUG)",
              static_cast<unsigned long long>(lru.result_hash),
              static_cast<unsigned long long>(slru.result_hash));
  std::printf("Query-class hit rate: slru %.3f vs lru %.3f — %.1fx %s\n",
              slru.query_hit_rate, lru.query_hit_rate, ratio,
              smoke ? "(smoke: identity-gated only)"
                    : (ratio >= 3.0 ? "(>= 3x target met)"
                                    : "(below 3x target)"));
  std::printf(
      "Expected shape: alternating full scans wipe a pure-LRU pool, so "
      "every query restarts cold; the segmented policy keeps the promoted "
      "hot set in the protected segment and scan churn stays in "
      "probation.\n");

  FILE* json = std::fopen("BENCH_cache.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"cache\",\n"
                 "  \"dataset\": \"uniform\",\n"
                 "  \"dim\": %u,\n"
                 "  \"n\": %zu,\n"
                 "  \"pool_pages\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"rounds\": %zu,\n"
                 "  \"smoke\": %s,\n"
                 "  \"results_identical\": %s,\n"
                 "  \"query_hit_rate_ratio\": %.3f,\n"
                 "  \"policies\": [\n",
                 dim, n, pool_pages, n_queries, rounds,
                 smoke ? "true" : "false", identical ? "true" : "false",
                 ratio);
    for (size_t i = 0; i < cells.size(); ++i) {
      const PolicyCell& c = cells[i];
      std::fprintf(
          json,
          "    {\"policy\": \"%s\", \"query_hits\": %llu, "
          "\"query_misses\": %llu, \"query_hit_rate\": %.4f, "
          "\"scan_hit_rate\": %.4f, \"evictions_query\": %llu, "
          "\"evictions_scan\": %llu, \"result_rows\": %llu, "
          "\"result_hash\": \"%016llx\"}%s\n",
          c.name, static_cast<unsigned long long>(c.query_hits),
          static_cast<unsigned long long>(c.query_misses), c.query_hit_rate,
          c.scan_hit_rate, static_cast<unsigned long long>(c.evict_query),
          static_cast<unsigned long long>(c.evict_scan),
          static_cast<unsigned long long>(c.result_rows),
          static_cast<unsigned long long>(c.result_hash),
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("Wrote BENCH_cache.json\n");
  }
  if (!identical) return 1;
  if (!smoke && ratio < 3.0) return 1;
  return 0;
}
