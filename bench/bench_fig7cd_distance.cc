// Figure 7(c),(d): distance-based queries under the Manhattan (L1) metric
// on COLHIST (the hB-tree is excluded, matching the paper: "hB-tree is not
// used since it does not support distance-based search"). Normalized I/O
// and CPU cost vs dimensionality for hybrid tree and SR-tree.

#include "bench_common.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 20000);
  const size_t n_queries = Queries();
  PrintHeader("Figure 7(c),(d): distance-based queries (L1 metric)",
              "Chakrabarti & Mehrotra, ICDE 1999, Figure 7(c),(d)",
              "COLHIST surrogate, n=" + std::to_string(n) +
                  ", selectivity=0.2%, L1 range queries, queries=" +
                  std::to_string(n_queries));

  L1Metric l1;
  TablePrinter io({"dim", "HybridTree", "SR-tree", "SeqScan"});
  TablePrinter cpu({"dim", "HybridTree", "SR-tree", "SeqScan"});
  for (uint32_t dim : {16u, 32u, 64u}) {
    Rng rng(7700 + dim);
    Dataset data = GenColhist(n, dim, rng);
    data.NormalizeUnitCube();  // paper §3.2: normalized feature space
    const double radius =
        CalibrateRangeRadius(data, l1, kColhistSelectivity, 20, rng);
    auto centers = MakeQueryCenters(data, n_queries, rng);
    BuildConfig config;
    config.expected_query_side = radius / dim;  // rough box-side analogue

    auto scan = BuildIndex(IndexKind::kSeqScan, data, config);
    HT_CHECK_OK(scan.status());
    auto scan_costs = RunRangeWorkload(scan.ValueOrDie().index.get(), centers,
                                       radius, l1);
    HT_CHECK_OK(scan_costs.status());
    const uint64_t scan_pages =
        static_cast<uint64_t>(scan_costs.ValueOrDie().avg_accesses);

    std::vector<std::string> io_row = {std::to_string(dim)};
    std::vector<std::string> cpu_row = {std::to_string(dim)};
    for (IndexKind kind : {IndexKind::kHybrid, IndexKind::kSrTree}) {
      auto bundle = BuildIndex(kind, data, config);
      HT_CHECK_OK(bundle.status());
      auto costs = RunRangeWorkload(bundle.ValueOrDie().index.get(), centers,
                                    radius, l1);
      HT_CHECK_OK(costs.status());
      NormalizedCosts norm = Normalize(costs.ValueOrDie(), false, scan_pages,
                                       scan_costs.ValueOrDie());
      io_row.push_back(TablePrinter::Num(norm.io, 4));
      cpu_row.push_back(TablePrinter::Num(norm.cpu, 4));
    }
    io_row.push_back("0.1000");
    cpu_row.push_back("1.0000");
    io.AddRow(io_row);
    cpu.AddRow(cpu_row);
  }
  std::printf("\nNormalized I/O cost (Figure 7(c)):\n");
  io.Print();
  std::printf("\nNormalized CPU cost (Figure 7(d)):\n");
  cpu.Print();
  std::printf(
      "Paper's shape: hybrid below SR-tree. Measured: hybrid wins both "
      "metrics at 64-d and CPU everywhere; SR-tree's bounding spheres help "
      "it ~10%% on I/O at 16/32-d (L1 balls suit spheres; see "
      "EXPERIMENTS.md).\n");
  return 0;
}
