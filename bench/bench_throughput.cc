// Extension (beyond the paper): concurrent query throughput. Serves a
// mixed batch of box / distance-range / k-NN queries against ONE shared
// hybrid tree through the src/exec subsystem (ThreadPool + QueryExecutor +
// lock-striped BufferPool) and reports QPS and latency percentiles as the
// worker count sweeps 1 -> 16.
//
// The paper's cost model is single-threaded disk accesses; this bench
// answers the systems question the paper leaves open: does the index
// scale when many clients query it at once? Speedup is hardware-bound
// (a 1-core container shows ~1x regardless of thread count); correctness
// is not: every thread count must reproduce the 1-worker results exactly.
//
// Extra env overrides (on top of bench_common.h):
//   HT_BENCH_THREADS_MAX  highest worker count in the sweep (default 16)

#include "bench_common.h"

#include <algorithm>
#include <thread>

#include "core/bulk_load.h"
#include "exec/query_executor.h"
#include "exec/thread_pool.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 20000);
  // At least one query of each of the three types.
  const size_t n_queries = std::max<size_t>(3, EnvSize("HT_BENCH_QUERIES", 600));
  const size_t max_threads = EnvSize("HT_BENCH_THREADS_MAX", 16);
  const size_t k = 10;
  PrintHeader(
      "Extension: concurrent query throughput (src/exec)",
      "beyond the paper: shared-read service of the paper's FOURIER "
      "workload (sec 4, 0.07% selectivity)",
      "FOURIER 16-d, n=" + std::to_string(n) + ", batch=" +
          std::to_string(3 * (n_queries / 3)) + " mixed box/range/knn, k=" +
          std::to_string(k) + ", L2 metric, hw threads=" +
          std::to_string(std::thread::hardware_concurrency()));

  Rng rng(4242);
  Dataset data = GenFourier(n, 16, rng);
  MemPagedFile file;
  HybridTreeOptions opts;
  opts.dim = 16;
  auto tree = BulkLoad(opts, &file, data).ValueOrDie();
  // Make the tree durable before serving; the flush write-back is batched
  // (one WriteBatch round trip per buffer-pool shard, see DESIGN.md §6d).
  HT_CHECK(tree->Flush().ok());
  const IoStats build_io = file.stats();
  std::printf("Build + flush wrote %llu pages in %llu batched write trips.\n",
              static_cast<unsigned long long>(build_io.writes),
              static_cast<unsigned long long>(build_io.batch_writes));

  // Mixed workload: one third each of box, distance-range and k-NN, all at
  // the paper's FOURIER operating point.
  L2Metric l2;
  BoxWorkload boxes = MakeBoxWorkload(data, kFourierSelectivity, n_queries / 3, rng);
  auto centers = MakeQueryCenters(data, 2 * (n_queries / 3), rng);
  const double radius =
      CalibrateRangeRadius(data, l2, kFourierSelectivity, 20, rng);
  Workload w;
  w.metric = &l2;
  for (const Box& b : boxes.queries) w.queries.push_back(Query::MakeBox(b));
  for (size_t i = 0; i < n_queries / 3; ++i) {
    w.queries.push_back(Query::MakeRange(centers[i], radius));
    w.queries.push_back(Query::MakeKnn(centers[n_queries / 3 + i], k));
  }

  std::printf("\nThroughput vs worker threads (batch of %zu queries):\n",
              w.queries.size());
  TablePrinter table({"threads", "wall (s)", "QPS", "speedup", "p50 (us)",
                      "p95 (us)", "p99 (us)", "reads/query", "writes",
                      "hit rate"});
  double qps_1 = 0.0;
  std::vector<QueryResult> reference;
  bool all_match = true;
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    ThreadPool pool(threads);
    QueryExecutor exec(tree.get(), &pool);
    tree->pool().ResetStats();
    BatchReport report = exec.Run(w).ValueOrDie();
    HT_CHECK(report.failed == 0 && report.completed == w.queries.size());
    if (threads == 1) {
      qps_1 = report.qps;
      reference = std::move(report.results);
    } else {
      for (size_t i = 0; i < reference.size(); ++i) {
        if (report.results[i].ids != reference[i].ids ||
            report.results[i].neighbors != reference[i].neighbors) {
          all_match = false;
        }
      }
    }
    table.AddRow(
        {std::to_string(threads), TablePrinter::Num(report.wall_seconds, 3),
         TablePrinter::Num(report.qps, 0),
         TablePrinter::Num(qps_1 > 0 ? report.qps / qps_1 : 1.0, 2),
         TablePrinter::Num(report.latency.p50 * 1e6, 0),
         TablePrinter::Num(report.latency.p95 * 1e6, 0),
         TablePrinter::Num(report.latency.p99 * 1e6, 0),
         TablePrinter::Num(static_cast<double>(report.io.logical_reads) /
                               static_cast<double>(report.completed),
                           1),
         std::to_string(report.io.writes + tree->pool().StatsSnapshot().writes),
         TablePrinter::Num(tree->pool().StatsSnapshot().HitRate(), 3)});
  }
  table.Print();
  std::printf("Cross-check vs 1 worker: results %s\n",
              all_match ? "byte-identical at every thread count"
                        : "MISMATCH (BUG)");
  std::printf(
      "Expected shape: QPS scales with threads up to the hardware core "
      "count (flat on a single-core host); reads/query is identical at "
      "every thread count because logical-read accounting is exact under "
      "concurrency; writes stays 0 — the shared-read protocol never "
      "dirties a page.\n");
  return all_match ? 0 : 1;
}
