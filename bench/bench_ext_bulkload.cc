// Extension ablation (not a paper figure): bottom-up bulk loading vs
// incremental insertion — build time, pages used, data-node fill, and
// query cost on the same workload. Bulk loading is the natural companion
// to the paper's VAMSplit comparison (itself a bulk-load algorithm).

#include "bench_common.h"
#include "common/timing.h"
#include "core/bulk_load.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 20000);
  const size_t n_queries = Queries();
  PrintHeader("Extension: bulk load vs incremental insertion",
              "repository extension (paper deploys in MARS; initial loads "
              "are bulk)",
              "COLHIST surrogate, n=" + std::to_string(n) +
                  ", selectivity=0.2%, queries=" + std::to_string(n_queries));

  TablePrinter table({"dim", "variant", "build (s)", "data pages", "fill",
                      "accesses/query", "CPU (us)/query"});
  for (uint32_t dim : {16u, 64u}) {
    Rng rng(7900 + dim);
    Dataset data = GenColhist(n, dim, rng);
    data.NormalizeUnitCube();
    BoxWorkload w = MakeBoxWorkload(data, kColhistSelectivity, n_queries, rng);

    HybridTreeOptions o;
    o.dim = dim;
    o.els_bits = 8;
    o.expected_query_side = w.side;

    // Incremental.
    {
      MemPagedFile file(o.page_size);
      WallTimer t;
      auto tree = HybridIndexAdapter::Create(o, &file).ValueOrDie();
      for (size_t i = 0; i < data.size(); ++i) {
        HT_CHECK_OK(tree->Insert(data.Row(i), i));
      }
      const double build = t.Seconds();
      TreeStats s = tree->tree().ComputeStats().ValueOrDie();
      auto costs = RunBoxWorkload(tree.get(), w.queries).ValueOrDie();
      table.AddRow({std::to_string(dim), "incremental",
                    TablePrinter::Num(build, 2),
                    std::to_string(s.data_nodes),
                    TablePrinter::Num(s.avg_data_utilization, 2),
                    TablePrinter::Num(costs.avg_accesses, 1),
                    TablePrinter::Num(costs.avg_cpu_seconds * 1e6, 1)});
    }
    // Bulk.
    {
      MemPagedFile file(o.page_size);
      WallTimer t;
      auto tree = BulkLoad(o, &file, data).ValueOrDie();
      const double build = t.Seconds();
      TreeStats s = tree->ComputeStats().ValueOrDie();
      uint64_t total = 0;
      WallTimer qt;
      size_t reps = 0;
      uint64_t accesses = 0;
      for (const auto& q : w.queries) {
        tree->pool().ResetStats();
        (void)tree->SearchBox(q).ValueOrDie();
        accesses += tree->pool().stats().logical_reads;
      }
      do {
        for (const auto& q : w.queries) {
          total += tree->SearchBox(q).ValueOrDie().size();
        }
        ++reps;
      } while (qt.Seconds() < 0.05 && reps < 1000);
      table.AddRow(
          {std::to_string(dim), "bulk load", TablePrinter::Num(build, 2),
           std::to_string(s.data_nodes),
           TablePrinter::Num(s.avg_data_utilization, 2),
           TablePrinter::Num(static_cast<double>(accesses) /
                                 static_cast<double>(w.queries.size()),
                             1),
           TablePrinter::Num(qt.Seconds() * 1e6 /
                                 (static_cast<double>(reps) *
                                  static_cast<double>(w.queries.size())),
                             1)});
      (void)total;
    }
  }
  table.Print();
  std::printf(
      "Expected shape: bulk load builds several times faster, uses ~25%% "
      "fewer pages (0.9 vs ~0.67 fill), and queries at least as cheaply.\n");
  return 0;
}
