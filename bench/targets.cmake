# Bench targets are defined from the top-level CMakeLists (via include())
# so that ${CMAKE_BINARY_DIR}/bench contains ONLY runnable binaries —
# `for b in build/bench/*; do $b; done` runs the full harness.

function(ht_add_bench name)
  add_executable(${name} ${PROJECT_SOURCE_DIR}/bench/${name}.cc)
  target_include_directories(${name} PRIVATE ${PROJECT_SOURCE_DIR}/bench)
  target_link_libraries(${name} PRIVATE ht_eval ht_baselines ht_core ht_data
    ht_geometry ht_storage ht_common Threads::Threads)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(ht_add_gbench name)
  ht_add_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

ht_add_bench(bench_table1_splits)
ht_add_bench(bench_fig5ab_eda_vs_vam)
ht_add_bench(bench_fig5c_els_bits)
ht_add_bench(bench_fig6ab_fourier)
ht_add_bench(bench_fig6cd_colhist)
ht_add_bench(bench_fig7ab_dbsize)
ht_add_bench(bench_fig7cd_distance)
ht_add_gbench(bench_micro_intranode)
ht_add_gbench(bench_micro_els)
ht_add_gbench(bench_micro_core)
ht_add_bench(bench_ext_bulkload)
ht_add_bench(bench_ext_knn)
ht_add_bench(bench_throughput)
target_link_libraries(bench_throughput PRIVATE ht_exec)
ht_add_bench(bench_hotpath)
ht_add_bench(bench_quant)
ht_add_bench(bench_io)
ht_add_bench(bench_ingest)
ht_add_bench(bench_serve)
target_link_libraries(bench_serve PRIVATE ht_serve ht_exec)
ht_add_bench(bench_cache)
