// Micro-benchmark for Encoded Live Space codecs (§3.4): encode/decode
// latency at the paper's configuration (4 bits) and above, plus the cost
// of the two-step overlap check.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/els.h"

namespace ht {
namespace {

struct Fixture {
  ElsCodec codec;
  Box ref;
  Box live;
  ElsCode code;
  Box query;

  Fixture(uint32_t dim, uint32_t bits)
      : codec(dim, bits), ref(Box::UnitCube(dim)) {
    Rng rng(8100 + dim + bits);
    std::vector<float> lo(dim), hi(dim), qlo(dim), qhi(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      float a = static_cast<float>(rng.NextDouble());
      float b = static_cast<float>(rng.NextDouble());
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
      a = static_cast<float>(rng.NextDouble());
      b = static_cast<float>(rng.NextDouble());
      qlo[d] = std::min(a, b);
      qhi[d] = std::max(a, b);
    }
    live = Box::FromBounds(lo, hi);
    query = Box::FromBounds(qlo, qhi);
    code = codec.Encode(live, ref);
  }
};

void BM_ElsEncode(benchmark::State& state) {
  Fixture f(static_cast<uint32_t>(state.range(0)),
            static_cast<uint32_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.codec.Encode(f.live, f.ref));
  }
}

void BM_ElsDecode(benchmark::State& state) {
  Fixture f(static_cast<uint32_t>(state.range(0)),
            static_cast<uint32_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.codec.Decode(f.code, f.ref));
  }
}

void BM_ElsTwoStepOverlapCheck(benchmark::State& state) {
  Fixture f(static_cast<uint32_t>(state.range(0)),
            static_cast<uint32_t>(state.range(1)));
  for (auto _ : state) {
    bool hit = false;
    // Step 1: kd-region check; step 2: decode only if step 1 passes.
    if (f.query.Intersects(f.ref)) {
      hit = f.query.Intersects(f.codec.Decode(f.code, f.ref));
    }
    benchmark::DoNotOptimize(hit);
  }
}

BENCHMARK(BM_ElsEncode)->Args({16, 4})->Args({64, 4})->Args({64, 8});
BENCHMARK(BM_ElsDecode)->Args({16, 4})->Args({64, 4})->Args({64, 8});
BENCHMARK(BM_ElsTwoStepOverlapCheck)->Args({64, 4});

}  // namespace
}  // namespace ht

BENCHMARK_MAIN();
