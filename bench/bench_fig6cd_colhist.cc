// Figure 6(c),(d): scalability to dimensionality on high-dimensional data
// — the COLHIST color-histogram dataset (paper: 70K points; 16/32/64-d).
// Normalized I/O and CPU cost for hybrid tree, hB-tree, SR-tree vs the
// sequential-scan reference.

#include "bench_common.h"

using namespace ht;
using namespace ht::bench;

int main() {
  const size_t n = EnvSize("HT_BENCH_N", 20000);
  const size_t n_queries = Queries();
  PrintHeader("Figure 6(c),(d): dimensionality scalability, COLHIST",
              "Chakrabarti & Mehrotra, ICDE 1999, Figure 6(c),(d)",
              "COLHIST surrogate, n=" + std::to_string(n) +
                  " (paper: 70K), selectivity=0.2%, queries=" +
                  std::to_string(n_queries));

  TablePrinter io({"dim", "HybridTree", "hB-tree", "SR-tree", "SeqScan"});
  TablePrinter cpu({"dim", "HybridTree", "hB-tree", "SR-tree", "SeqScan"});
  for (uint32_t dim : {16u, 32u, 64u}) {
    Rng rng(7400 + dim);
    Dataset data = GenColhist(n, dim, rng);
    data.NormalizeUnitCube();  // paper §3.2: normalized feature space
    BoxWorkload w = MakeBoxWorkload(data, kColhistSelectivity, n_queries, rng);
    BuildConfig config;
    config.expected_query_side = w.side;

    auto scan = BuildIndex(IndexKind::kSeqScan, data, config);
    HT_CHECK_OK(scan.status());
    auto scan_costs = RunBoxWorkload(scan.ValueOrDie().index.get(), w.queries);
    HT_CHECK_OK(scan_costs.status());
    const uint64_t scan_pages =
        static_cast<uint64_t>(scan_costs.ValueOrDie().avg_accesses);

    std::vector<std::string> io_row = {std::to_string(dim)};
    std::vector<std::string> cpu_row = {std::to_string(dim)};
    for (IndexKind kind : {IndexKind::kHybrid, IndexKind::kHbTree,
                           IndexKind::kSrTree}) {
      QueryCosts costs = MeasureBox(kind, data, config, w.queries);
      NormalizedCosts norm =
          Normalize(costs, false, scan_pages, scan_costs.ValueOrDie());
      io_row.push_back(TablePrinter::Num(norm.io, 4));
      cpu_row.push_back(TablePrinter::Num(norm.cpu, 4));
    }
    io_row.push_back("0.1000");
    cpu_row.push_back("1.0000");
    io.AddRow(io_row);
    cpu.AddRow(cpu_row);
  }
  std::printf("\nNormalized I/O cost (Figure 6(c)):\n");
  io.Print();
  std::printf("\nNormalized CPU cost (Figure 6(d)):\n");
  cpu.Print();
  std::printf(
      "Paper's shape: hybrid < hB < SR everywhere. Measured: hybrid lowest "
      "on both metrics at every dimensionality and the only structure below "
      "the 0.1 scan line at 64-d; our hB trails SR on synthetic histograms "
      "(no dead-space elimination; see EXPERIMENTS.md).\n");
  return 0;
}
